// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Adversarial service provider demo: runs every attack from the threat model
// (paper §II: RS' = (RS - DS) ∪ IS) against both outsourcing models and
// prints the detection matrix. Every row must read "detected".
//
//   $ ./examples/adversarial_sp

#include <cstdio>

#include "core/system.h"
#include "workload/dataset.h"

using namespace sae;
using core::AttackMode;

namespace {

const char* ModeName(AttackMode mode) {
  switch (mode) {
    case AttackMode::kNone:
      return "honest";
    case AttackMode::kDropOne:
      return "drop one record      (completeness)";
    case AttackMode::kDropAll:
      return "drop entire result   (completeness)";
    case AttackMode::kInjectFake:
      return "inject fake record   (soundness)";
    case AttackMode::kTamperPayload:
      return "tamper payload bytes (soundness)";
    case AttackMode::kTamperKey:
      return "tamper search key    (soundness)";
    case AttackMode::kDuplicateOne:
      return "duplicate a record   (soundness)";
    case AttackMode::kReplayStaleRoot:
      return "replay stale snapshot (freshness)";
    case AttackMode::kStaleVt:
      return "stale token/signature (freshness)";
    case AttackMode::kStaleCacheReplay:
      return "replay stale cache hit (freshness)";
    case AttackMode::kPoisonedCache:
      return "poison own answer cache (cache)";
    case AttackMode::kWrongCount:
      return "lie about COUNT      (aggregate)";
    case AttackMode::kWrongSum:
      return "lie about SUM        (aggregate)";
    case AttackMode::kTruncatedTopK:
      return "truncate top-k       (aggregate)";
  }
  return "?";
}

}  // namespace

int main() {
  constexpr size_t kRecSize = 120;
  workload::DatasetSpec spec;
  spec.cardinality = 5000;
  spec.record_size = kRecSize;
  spec.domain_max = 100000;
  auto records = workload::GenerateDataset(spec);

  core::SaeSystem::Options sae_options;
  sae_options.record_size = kRecSize;
  core::SaeSystem sae_system(sae_options);
  if (!sae_system.Load(records).ok()) return 1;

  core::TomSystem::Options tom_options;
  tom_options.record_size = kRecSize;
  tom_options.rsa_modulus_bits = 512;
  core::TomSystem tom_system(tom_options);
  if (!tom_system.Load(records).ok()) return 1;

  // One update each, so the freshness attacks have a genuinely stale
  // snapshot to replay (the epoch advances to 2).
  storage::RecordCodec codec(kRecSize);
  if (!sae_system.Insert(codec.MakeRecord(999999, 30000)).ok()) return 1;
  if (!tom_system.Insert(codec.MakeRecord(999999, 30000)).ok()) return 1;

  std::printf("query [20000, 40000] under a compromised SP\n\n");
  std::printf("%-40s %-12s %-12s\n", "attack", "SAE client", "TOM client");
  std::printf("%-40s %-12s %-12s\n", "------", "----------", "----------");

  bool all_caught = true;
  for (AttackMode mode :
       {AttackMode::kNone, AttackMode::kDropOne, AttackMode::kDropAll,
        AttackMode::kInjectFake, AttackMode::kTamperPayload,
        AttackMode::kTamperKey, AttackMode::kDuplicateOne,
        AttackMode::kReplayStaleRoot, AttackMode::kStaleVt,
        AttackMode::kStaleCacheReplay, AttackMode::kPoisonedCache,
        AttackMode::kWrongCount, AttackMode::kWrongSum,
        AttackMode::kTruncatedTopK}) {
    // Aggregate attacks target the derived answer, so run them against
    // the operator they lie about; everything else attacks a range scan.
    dbms::QueryRequest request = dbms::QueryRequest::Scan(20000, 40000);
    if (mode == AttackMode::kWrongCount) {
      request = dbms::QueryRequest::Count(20000, 40000);
    } else if (mode == AttackMode::kWrongSum) {
      request = dbms::QueryRequest::Sum(20000, 40000);
    } else if (mode == AttackMode::kTruncatedTopK) {
      request = dbms::QueryRequest::TopK(20000, 40000, 10);
    }
    auto sae = sae_system.Query(request, mode);
    auto tom = tom_system.Query(request, mode);
    if (!sae.ok() || !tom.ok()) return 1;

    bool sae_accepts = sae.value().verification.ok();
    bool tom_accepts = tom.value().verification.ok();
    std::printf("%-40s %-12s %-12s\n", ModeName(mode),
                sae_accepts ? "accepted" : "detected",
                tom_accepts ? "accepted" : "detected");

    bool should_accept = (mode == AttackMode::kNone);
    all_caught &= (sae_accepts == should_accept);
    all_caught &= (tom_accepts == should_accept);
  }

  std::printf("\n%s\n", all_caught ? "all attacks detected, honest accepted"
                                   : "SECURITY VIOLATION");
  return all_caught ? 0 : 1;
}
