// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Crash-recovery demo on the durability subsystem (epoch snapshots + WAL,
// core/durability.h). The SP runs with durability enabled over a
// crash-injection file system (storage::FaultFs), gets killed mid-update
// by a simulated power loss, recovers from the snapshot + WAL tail, and
// serves verifying queries again at the exact epoch it had made durable.
// The finale is the rollback adversary: restoring the SP from an OLDER
// disk image recovers fine — the state is genuine, just old — but the
// unmodified client freshness gate rejects its answers as kStaleEpoch.
//
//   $ ./examples/example_restartable_sp
//
// Exit codes: 0 ok; 1 setup failed; 2 the armed crash did not fire;
// 3 recovery failed; 4 a recovered query failed verification; 5 the
// recovered epoch is wrong; 6 the rollback was NOT rejected.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/system.h"
#include "storage/fault_fs.h"
#include "workload/dataset.h"

using namespace sae;

namespace {

constexpr size_t kRecSize = 256;
constexpr size_t kCardinality = 5000;
constexpr uint32_t kDomainMax = 100000;

core::SaeSystemOptions DurableOptions(storage::FaultFs* fs) {
  core::SaeSystemOptions options;
  options.record_size = kRecSize;
  options.durability.enabled = true;
  options.durability.dir = "/sp";          // paths live inside the FaultFs
  options.durability.vfs = fs;
  options.durability.snapshot_interval = 8;  // checkpoint every 8 updates
  return options;
}

void PrintDurabilityStats(const core::DurabilityStats& stats,
                          const char* when) {
  std::printf(
      "  durability %s: wal %llu records / %llu syncs (%.1f records per "
      "sync), checkpoints %llu full + %llu delta (chain length %llu), "
      "last checkpoint %llu bytes in %.2f ms\n",
      when, (unsigned long long)stats.wal_records,
      (unsigned long long)stats.wal_syncs, stats.avg_group_records,
      (unsigned long long)stats.checkpoints_full,
      (unsigned long long)stats.checkpoints_delta,
      (unsigned long long)stats.delta_chain_length,
      (unsigned long long)stats.last_checkpoint_bytes,
      stats.last_checkpoint_ms);
}

bool QueryAndVerify(core::SaeSystem* system, uint32_t lo, uint32_t hi) {
  auto outcome = system->Query(lo, hi);
  if (!outcome.ok()) {
    std::printf("  query [%u, %u] failed: %s\n", lo, hi,
                outcome.status().ToString().c_str());
    return false;
  }
  std::printf("  query [%u, %u]: %zu results, epoch %llu, verification %s\n",
              lo, hi, outcome.value().results.size(),
              (unsigned long long)outcome.value().claimed_epoch,
              outcome.value().verification.ToString().c_str());
  return outcome.value().verification.ok();
}

}  // namespace

int main() {
  workload::DatasetSpec spec;
  spec.cardinality = kCardinality;
  spec.record_size = kRecSize;
  spec.domain_max = kDomainMax;
  auto records = workload::GenerateDataset(spec);
  storage::RecordCodec codec(kRecSize);

  // --- session 1: durable SP ingests and takes updates ---------------------
  storage::FaultFs fs;
  std::unique_ptr<storage::FaultFs> old_disk_image;
  uint64_t durable_epoch = 0;
  {
    core::SaeSystem system(DurableOptions(&fs));
    if (!system.Load(records).ok()) return 1;
    std::printf(
        "session 1: loaded %zu records, epoch %llu, baseline snapshot on "
        "disk\n",
        records.size(), (unsigned long long)system.epoch());

    // A dozen updates: each appends + syncs one WAL record BEFORE the
    // in-memory auth state mutates.
    for (uint64_t i = 0; i < 12; ++i) {
      auto record = codec.MakeRecord(kCardinality + 1 + i,
                                     kDomainMax + 10 + uint32_t(i));
      if (!system.Insert(record).ok()) return 1;
    }
    durable_epoch = system.epoch();
    // Drain the background checkpointer so the disk image below is
    // deterministic — it now holds a full baseline plus a delta link.
    if (!system.WaitForCheckpoints().ok()) return 1;
    PrintDurabilityStats(system.durability_stats(), "before the crash");

    // The rollback adversary images the disk NOW (all 12 updates durable)…
    old_disk_image = fs.Clone();

    // …the SP keeps going, then the power dies mid-update: the next WAL
    // sync fails and every operation after it sees dead storage.
    if (!system.Insert(codec.MakeRecord(kCardinality + 100,
                                        kDomainMax + 100))
             .ok()) {
      return 1;
    }
    durable_epoch = system.epoch();
    if (!system.WaitForCheckpoints().ok()) return 1;
    fs.CrashAtSyncPoint(1);  // the very next durability barrier fails
    Status st =
        system.Insert(codec.MakeRecord(kCardinality + 101, kDomainMax + 101));
    if (st.ok() || !fs.crashed()) return 2;
    std::printf(
        "session 1: power lost mid-update (%s); %llu bytes of volatile "
        "state destroyed\n",
        st.ToString().c_str(), (unsigned long long)fs.volatile_bytes());
  }
  fs.DropVolatile();  // the process is gone; only durable bytes remain

  // --- session 2: recover and serve ----------------------------------------
  auto recovered = core::SaeSystem::Recover(DurableOptions(&fs));
  if (!recovered.ok()) {
    std::printf("recovery failed: %s\n",
                recovered.status().ToString().c_str());
    return 3;
  }
  core::SaeSystem& sp = *recovered.value();
  std::printf(
      "session 2: recovered from snapshot chain + WAL tail at epoch %llu "
      "(wal %llu bytes, %llu delta links composed)\n",
      (unsigned long long)sp.epoch(),
      (unsigned long long)sp.durability()->wal_bytes(),
      (unsigned long long)sp.durability()->recovered().chain_deltas);
  if (sp.epoch() != durable_epoch) return 5;  // lost a durable update!
  PrintDurabilityStats(sp.durability_stats(), "after recovery");

  if (!QueryAndVerify(&sp, 20000, 25000)) return 4;
  if (!QueryAndVerify(&sp, 0, 3000)) return 4;
  // The in-flight update died before its WAL record became durable, so it
  // never happened — and the recovered SP takes new updates normally.
  if (!sp.Insert(codec.MakeRecord(kCardinality + 200, kDomainMax + 200))
           .ok()) {
    return 4;
  }
  const uint64_t live_epoch = sp.epoch();

  // --- the rollback adversary ----------------------------------------------
  // Restore the SP from the older disk image. Recovery succeeds — the
  // image is internally consistent — but the epoch it can prove is stale,
  // and the client, holding the live published epoch, refuses the answer.
  auto rolled_back = core::SaeSystem::Recover(
      DurableOptions(old_disk_image.get()));
  if (!rolled_back.ok()) return 3;
  auto outcome = rolled_back.value()->Query(20000, 25000);
  if (!outcome.ok()) return 6;
  Status verdict = core::Client::VerifyAnswer(
      outcome.value().request, outcome.value().answer,
      outcome.value().results, outcome.value().vt,
      outcome.value().claimed_epoch, live_epoch, codec);
  std::printf(
      "rollback adversary: served epoch %llu against live epoch %llu -> "
      "%s\n",
      (unsigned long long)outcome.value().claimed_epoch,
      (unsigned long long)live_epoch, verdict.ToString().c_str());
  if (verdict.code() != StatusCode::kStaleEpoch) return 6;

  std::printf(
      "the SP crashed, recovered every durable update, and the rolled-back "
      "replica was caught by the freshness gate\n");
  return 0;
}
