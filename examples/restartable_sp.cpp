// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Persistence demo: the SP stores the outsourced table in page files on
// disk, snapshots its metadata, "crashes", and reopens without the data
// owner re-shipping anything — queries still verify against the TE.
//
//   $ ./examples/restartable_sp [workdir]

#include <cstdio>
#include <string>

#include "core/client.h"
#include "core/trusted_entity.h"
#include "dbms/table.h"
#include "storage/page_store.h"
#include "util/codec.h"
#include "workload/dataset.h"

using namespace sae;

namespace {
constexpr size_t kRecSize = 256;
constexpr size_t kCardinality = 5000;
}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp";
  std::string index_path = dir + "/saedb_example_index.db";
  std::string heap_path = dir + "/saedb_example_heap.db";
  std::remove(index_path.c_str());
  std::remove(heap_path.c_str());

  workload::DatasetSpec spec;
  spec.cardinality = kCardinality;
  spec.record_size = kRecSize;
  spec.domain_max = 100000;
  auto records = workload::GenerateDataset(spec);

  // The TE is an independent party: it stays up across SP restarts.
  core::TrustedEntity te(core::TrustedEntity::Options{
      kRecSize, crypto::HashScheme::kSha1, 1024, {}, {}});
  if (!te.LoadDataset(records).ok()) return 1;

  ByteWriter snapshot;
  {
    // --- SP session 1: ingest and persist -------------------------------
    auto index_store = storage::FilePageStore::Create(index_path).ValueOrDie();
    auto heap_store = storage::FilePageStore::Create(heap_path).ValueOrDie();
    storage::BufferPool index_pool(index_store.get(), 256);
    storage::BufferPool heap_pool(heap_store.get(), 256);
    auto table =
        dbms::Table::Create(&index_pool, &heap_pool, kRecSize).ValueOrDie();
    if (!table->BulkLoad(records).ok()) return 1;
    table->WriteSnapshot(&snapshot);
    if (!index_pool.FlushAll().ok() || !heap_pool.FlushAll().ok()) return 1;
    std::printf("session 1: ingested %zu records into %s (+ index)\n",
                table->size(), heap_path.c_str());
  }  // SP process "crashes" here; only the files + snapshot bytes survive.

  {
    // --- SP session 2: reopen and serve ---------------------------------
    auto index_store = storage::FilePageStore::Open(index_path).ValueOrDie();
    auto heap_store = storage::FilePageStore::Open(heap_path).ValueOrDie();
    storage::BufferPool index_pool(index_store.get(), 256);
    storage::BufferPool heap_pool(heap_store.get(), 256);
    ByteReader reader(snapshot.bytes().data(), snapshot.size());
    auto table =
        dbms::Table::OpenSnapshot(&index_pool, &heap_pool, &reader)
            .ValueOrDie();
    std::printf("session 2: reopened table with %zu records\n",
                table->size());

    storage::RecordCodec codec(kRecSize);
    for (auto [lo, hi] : {std::pair<uint32_t, uint32_t>{20000, 25000},
                          std::pair<uint32_t, uint32_t>{0, 3000}}) {
      std::vector<storage::Record> results;
      if (!table->RangeQuery(lo, hi, &results).ok()) return 1;
      auto vt = te.GenerateVt(lo, hi);
      if (!vt.ok()) return 1;
      Status verdict = core::Client::VerifyResult(results, vt.value(), codec);
      std::printf("  query [%u, %u]: %zu results, verification %s\n", lo, hi,
                  results.size(), verdict.ToString().c_str());
      if (!verdict.ok()) return 1;
    }
  }

  std::remove(index_path.c_str());
  std::remove(heap_path.c_str());
  std::printf("the SP restarted without the DO re-shipping the dataset\n");
  return 0;
}
