// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit + property tests for the XB-Tree: GenerateVT against a brute-force
// XOR model, X-value maintenance across inserts/deletes (splits, borrows,
// merges, internal-key replacement), duplicate chains, and bulk load.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "storage/page_store.h"
#include "util/random.h"
#include "xbtree/xb_tree.h"

namespace sae::xbtree {
namespace {

using storage::BufferPool;
using storage::InMemoryPageStore;

crypto::Digest DigestFor(uint64_t id) {
  return crypto::ComputeDigest(&id, sizeof(id));
}

// Reference model: multimap key -> (id, digest).
class XbFixture : public ::testing::Test {
 protected:
  XbFixture() : pool_(&store_, 1024) {}

  void MakeTree(size_t max_entries = 4, size_t tuples_per_chunk = 3) {
    XbTreeOptions options;
    options.max_entries = max_entries;
    options.tuples_per_chunk = tuples_per_chunk;
    auto r = XbTree::Create(&pool_, options);
    ASSERT_TRUE(r.ok());
    tree_ = std::move(r).ValueOrDie();
  }

  void Insert(uint32_t key, uint64_t id) {
    ASSERT_TRUE(tree_->Insert(key, id, DigestFor(id)).ok());
    model_.emplace(key, id);
  }

  void Delete(uint32_t key, uint64_t id) {
    ASSERT_TRUE(tree_->Delete(key, id).ok());
    auto range = model_.equal_range(key);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == id) {
        model_.erase(it);
        break;
      }
    }
  }

  crypto::Digest BruteForceVt(uint32_t lo, uint32_t hi) const {
    crypto::Digest vt;
    for (auto it = model_.lower_bound(lo);
         it != model_.end() && it->first <= hi; ++it) {
      vt ^= DigestFor(it->second);
    }
    return vt;
  }

  void ExpectVtMatches(uint32_t lo, uint32_t hi) {
    auto vt = tree_->GenerateVT(lo, hi);
    ASSERT_TRUE(vt.ok());
    EXPECT_EQ(vt.value(), BruteForceVt(lo, hi))
        << "range [" << lo << ", " << hi << "]";
  }

  InMemoryPageStore store_;
  BufferPool pool_;
  std::unique_ptr<XbTree> tree_;
  std::multimap<uint32_t, uint64_t> model_;
};

TEST_F(XbFixture, EmptyTreeVtIsZero) {
  MakeTree();
  auto vt = tree_->GenerateVT(0, 100);
  ASSERT_TRUE(vt.ok());
  EXPECT_TRUE(vt.value().IsZero());
  EXPECT_TRUE(tree_->Validate().ok());
}

TEST_F(XbFixture, SingleTupleVt) {
  MakeTree();
  Insert(50, 1);
  ExpectVtMatches(0, 100);
  ExpectVtMatches(50, 50);
  ExpectVtMatches(0, 49);   // empty
  ExpectVtMatches(51, 99);  // empty
  ASSERT_TRUE(tree_->Validate().ok());
}

TEST_F(XbFixture, RejectsInvertedRange) {
  MakeTree();
  EXPECT_FALSE(tree_->GenerateVT(10, 5).ok());
}

TEST_F(XbFixture, PaperFigure3Example) {
  // Search keys {1,3,3,6,6,12,13,15,18,18,20,23,23,25} for tuples t1..t14,
  // query [5, 17] -> VT = t4 ^ t5 ^ t6 ^ t7 ^ t8 (paper §III).
  MakeTree(2, 2);  // tiny fanout to force a multi-level tree
  const uint32_t keys[] = {1, 3, 3, 6, 6, 12, 13, 15, 18, 18, 20, 23, 23, 25};
  for (uint64_t i = 0; i < 14; ++i) Insert(keys[i], i + 1);
  ASSERT_TRUE(tree_->Validate().ok());

  crypto::Digest expect = DigestFor(4) ^ DigestFor(5) ^ DigestFor(6) ^
                          DigestFor(7) ^ DigestFor(8);
  auto vt = tree_->GenerateVT(5, 17);
  ASSERT_TRUE(vt.ok());
  EXPECT_EQ(vt.value(), expect);
  ExpectVtMatches(5, 17);
  // A few more ranges over the same dataset.
  ExpectVtMatches(0, 30);
  ExpectVtMatches(3, 3);
  ExpectVtMatches(18, 23);
  ExpectVtMatches(26, 100);
}

TEST_F(XbFixture, DuplicateChainsAcrossPages) {
  MakeTree(4, 2);  // 2 tuples per duplicate chunk -> chains form quickly
  for (uint64_t id = 1; id <= 20; ++id) Insert(7, id);
  EXPECT_EQ(tree_->distinct_keys(), 1u);
  EXPECT_EQ(tree_->size(), 20u);
  EXPECT_GE(tree_->dup_chunk_count(), 10u);
  ASSERT_TRUE(tree_->Validate().ok());
  ExpectVtMatches(7, 7);
  ExpectVtMatches(0, 100);
  ExpectVtMatches(8, 100);  // empty

  // Remove from the middle of the chain.
  for (uint64_t id : {5ull, 1ull, 20ull, 13ull}) {
    Delete(7, id);
    ASSERT_TRUE(tree_->Validate().ok());
    ExpectVtMatches(7, 7);
  }
}

TEST_F(XbFixture, DeleteMissingTupleReportsNotFound) {
  MakeTree();
  Insert(5, 1);
  EXPECT_EQ(tree_->Delete(5, 99).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree_->Delete(6, 1).code(), StatusCode::kNotFound);
}

TEST_F(XbFixture, InsertSplitsKeepXConsistent) {
  MakeTree(4, 3);
  Rng rng(77);
  for (uint64_t id = 1; id <= 300; ++id) {
    Insert(uint32_t(rng.NextBounded(10000)), id);
    if (id % 25 == 0) {
      ASSERT_TRUE(tree_->Validate().ok()) << "after insert " << id;
    }
  }
  EXPECT_GT(tree_->height(), 2u);
  for (int i = 0; i < 50; ++i) {
    uint32_t lo = uint32_t(rng.NextBounded(10000));
    uint32_t hi = lo + uint32_t(rng.NextBounded(2000));
    ExpectVtMatches(lo, hi);
  }
}

TEST_F(XbFixture, DeleteRebalancesKeepXConsistent) {
  MakeTree(4, 3);
  Rng rng(78);
  std::vector<std::pair<uint32_t, uint64_t>> tuples;
  for (uint64_t id = 1; id <= 300; ++id) {
    uint32_t key = uint32_t(rng.NextBounded(5000));
    Insert(key, id);
    tuples.emplace_back(key, id);
  }
  // Shuffle deletion order.
  for (size_t i = tuples.size(); i > 1; --i) {
    std::swap(tuples[i - 1], tuples[rng.NextBounded(i)]);
  }
  for (size_t i = 0; i < tuples.size(); ++i) {
    Delete(tuples[i].first, tuples[i].second);
    if (i % 20 == 0) {
      ASSERT_TRUE(tree_->Validate().ok()) << "after delete " << i;
      uint32_t lo = uint32_t(rng.NextBounded(5000));
      ExpectVtMatches(lo, lo + 500);
    }
  }
  EXPECT_EQ(tree_->size(), 0u);
  EXPECT_EQ(tree_->height(), 1u);
  EXPECT_EQ(tree_->dup_chunk_count(), 0u);
}

TEST_F(XbFixture, InternalKeyDeletionPullsSuccessor) {
  MakeTree(2, 2);  // tiny fanout: most keys live in internal nodes
  for (uint64_t id = 1; id <= 40; ++id) Insert(uint32_t(id * 10), id);
  ASSERT_TRUE(tree_->Validate().ok());
  ASSERT_GT(tree_->height(), 2u);
  // Delete keys in an order that hits internal entries.
  for (uint64_t id : {20ull, 10ull, 30ull, 25ull, 15ull, 35ull, 5ull}) {
    Delete(uint32_t(id * 10), id);
    ASSERT_TRUE(tree_->Validate().ok()) << "after deleting key " << id * 10;
    ExpectVtMatches(0, 1000);
    ExpectVtMatches(100, 300);
  }
}

TEST_F(XbFixture, BulkLoadMatchesModel) {
  MakeTree(4, 3);
  Rng rng(79);
  std::vector<XbTuple> tuples;
  for (uint64_t id = 1; id <= 500; ++id) {
    uint32_t key = uint32_t(rng.NextBounded(800));  // dense -> duplicates
    tuples.push_back(XbTuple{key, id, DigestFor(id)});
    model_.emplace(key, id);
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const XbTuple& a, const XbTuple& b) { return a.key < b.key; });
  ASSERT_TRUE(tree_->BulkLoad(tuples).ok());
  ASSERT_TRUE(tree_->Validate().ok());
  EXPECT_EQ(tree_->size(), 500u);

  for (int i = 0; i < 80; ++i) {
    uint32_t lo = uint32_t(rng.NextBounded(800));
    uint32_t hi = lo + uint32_t(rng.NextBounded(200));
    ExpectVtMatches(lo, hi);
  }
  ExpectVtMatches(0, 799);
}

TEST_F(XbFixture, BulkLoadedTreeSupportsUpdates) {
  MakeTree(4, 3);
  std::vector<XbTuple> tuples;
  for (uint64_t id = 1; id <= 200; ++id) {
    tuples.push_back(XbTuple{uint32_t(id * 2), id, DigestFor(id)});
    model_.emplace(uint32_t(id * 2), id);
  }
  ASSERT_TRUE(tree_->BulkLoad(tuples).ok());
  for (uint64_t id = 201; id <= 260; ++id) Insert(uint32_t(id * 2 + 1), id);
  for (uint64_t id = 1; id <= 60; ++id) Delete(uint32_t(id * 2), id);
  ASSERT_TRUE(tree_->Validate().ok());
  Rng rng(80);
  for (int i = 0; i < 50; ++i) {
    uint32_t lo = uint32_t(rng.NextBounded(520));
    ExpectVtMatches(lo, lo + 60);
  }
}

TEST_F(XbFixture, BulkLoadRejectsUnsortedOrNonEmpty) {
  MakeTree();
  std::vector<XbTuple> unsorted{{5, 1, DigestFor(1)}, {3, 2, DigestFor(2)}};
  EXPECT_EQ(tree_->BulkLoad(unsorted).code(), StatusCode::kInvalidArgument);
  Insert(1, 1);
  std::vector<XbTuple> one{{5, 2, DigestFor(2)}};
  EXPECT_EQ(tree_->BulkLoad(one).code(), StatusCode::kInvalidArgument);
}

TEST_F(XbFixture, DefaultFanoutMatchesPageMath) {
  XbTreeOptions options;  // defaults
  auto tree = XbTree::Create(&pool_, options).ValueOrDie();
  // (4096 - 16 - 24) / 32 = 126 keyed entries per node.
  EXPECT_EQ(tree->max_entries(), 126u);
}

TEST_F(XbFixture, VtGenerationTouchesLogarithmicNodes) {
  MakeTree(8, 3);
  for (uint64_t id = 1; id <= 4000; ++id) {
    ASSERT_TRUE(tree_->Insert(uint32_t(id), id, DigestFor(id)).ok());
  }
  pool_.ResetStats();
  auto vt = tree_->GenerateVT(1000, 3000);  // covers half the tree
  ASSERT_TRUE(vt.ok());
  // Two boundary paths + a handful of chain/child probes; far below the
  // 2000-tuple result size.
  EXPECT_LT(pool_.stats().accesses, 12 * tree_->height());
}

// Property test: random interleavings, VT equality on random ranges.
class XbRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XbRandomizedTest, VtAlwaysMatchesBruteForce) {
  InMemoryPageStore store;
  BufferPool pool(&store, 2048);
  XbTreeOptions options;
  options.max_entries = 5;
  options.tuples_per_chunk = 2;
  auto tree = XbTree::Create(&pool, options).ValueOrDie();

  std::multimap<uint32_t, uint64_t> model;
  Rng rng(GetParam());
  uint64_t next_id = 1;

  for (int step = 0; step < 1500; ++step) {
    if (model.empty() || rng.NextBool(0.6)) {
      uint32_t key = uint32_t(rng.NextBounded(400));  // dense key space
      uint64_t id = next_id++;
      ASSERT_TRUE(tree->Insert(key, id, DigestFor(id)).ok());
      model.emplace(key, id);
    } else {
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      ASSERT_TRUE(tree->Delete(it->first, it->second).ok());
      model.erase(it);
    }

    if (step % 50 == 0) {
      uint32_t lo = uint32_t(rng.NextBounded(400));
      uint32_t hi = lo + uint32_t(rng.NextBounded(100));
      crypto::Digest expect;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        expect ^= DigestFor(it->second);
      }
      auto vt = tree->GenerateVT(lo, hi);
      ASSERT_TRUE(vt.ok());
      ASSERT_EQ(vt.value(), expect) << "step " << step;
    }
    if (step % 300 == 299) {
      ASSERT_TRUE(tree->Validate().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE(tree->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, XbRandomizedTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace sae::xbtree
