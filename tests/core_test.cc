// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit tests for src/core: message codecs, SAE entities, TOM entities, the
// client verifier, and the adversary toolbox.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/client.h"
#include "core/data_owner.h"
#include "core/malicious_sp.h"
#include "core/messages.h"
#include "core/service_provider.h"
#include "core/tom.h"
#include "core/trusted_entity.h"
#include "util/random.h"

namespace sae::core {
namespace {

constexpr size_t kRecSize = 64;

std::vector<Record> SmallDataset(size_t n, uint32_t key_stride = 10) {
  RecordCodec codec(kRecSize);
  std::vector<Record> out;
  for (uint64_t id = 1; id <= n; ++id) {
    out.push_back(codec.MakeRecord(id, uint32_t(id * key_stride)));
  }
  return out;
}

// --- messages -----------------------------------------------------------------

TEST(MessagesTest, RecordsRoundTrip) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records = SmallDataset(20);
  std::vector<uint8_t> bytes = SerializeRecords(records, codec);
  auto back = DeserializeRecords(bytes, codec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), records);
}

TEST(MessagesTest, RecordsSizeIsPredictable) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records = SmallDataset(10);
  // 13-byte header + n * record_size.
  EXPECT_EQ(SerializeRecords(records, codec).size(), 13 + 10 * kRecSize);
}

TEST(MessagesTest, QueryRoundTrip) {
  auto bytes = SerializeQuery(123, 456);
  auto q = DeserializeQuery(bytes);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().first, 123u);
  EXPECT_EQ(q.value().second, 456u);
}

TEST(MessagesTest, VtRoundTripAndSize) {
  VerificationToken vt;
  vt.epoch = 42;
  vt.digest = crypto::ComputeDigest("x", 1);
  auto bytes = SerializeVt(vt);
  // 1 tag + 8 epoch + 20 digest — still constant, still "a few bytes".
  EXPECT_EQ(bytes.size(), 29u);
  auto back = DeserializeVt(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), vt);
}

TEST(MessagesTest, ResultsRoundTripCarriesEpoch) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records = SmallDataset(7);
  auto bytes = SerializeResults(records, 99, codec);
  auto back = DeserializeResults(bytes, codec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().first, records);
  EXPECT_EQ(back.value().second, 99u);
  // Epoch stamp costs exactly 8 bytes over the plain records message.
  EXPECT_EQ(bytes.size(), SerializeRecords(records, codec).size() + 8);
}

TEST(MessagesTest, EpochNoticeRoundTrip) {
  auto bytes = SerializeEpochNotice(0xDEADBEEFu);
  EXPECT_EQ(bytes.size(), 9u);  // tag + u64
  auto back = DeserializeEpochNotice(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), 0xDEADBEEFu);
}

TEST(MessagesTest, DeleteRoundTrip) {
  auto bytes = SerializeDelete(987654321, 42);
  auto back = DeserializeDelete(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().first, 987654321u);
  EXPECT_EQ(back.value().second, 42u);
}

TEST(MessagesTest, SignatureRoundTrip) {
  crypto::RsaSignature sig{1, 2, 3, 4, 5};
  auto back = DeserializeSignature(SerializeSignature(sig, 17));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().first, sig);
  EXPECT_EQ(back.value().second, 17u);
}

TEST(MessagesTest, MistaggedMessagesRejected) {
  auto vt_bytes = SerializeVt(VerificationToken{});
  EXPECT_FALSE(DeserializeQuery(vt_bytes).ok());
  EXPECT_FALSE(DeserializeSignature(vt_bytes).ok());
  EXPECT_FALSE(DeserializeEpochNotice(vt_bytes).ok());
  RecordCodec codec(kRecSize);
  EXPECT_FALSE(DeserializeRecords(vt_bytes, codec).ok());
  EXPECT_FALSE(DeserializeResults(vt_bytes, codec).ok());
}

// --- SAE client ----------------------------------------------------------------

TEST(ClientTest, XorMatchesManualComputation) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records = SmallDataset(5);
  crypto::Digest manual;
  for (const Record& r : records) {
    std::vector<uint8_t> bytes = codec.Serialize(r);
    manual ^= crypto::ComputeDigest(bytes.data(), bytes.size());
  }
  EXPECT_EQ(Client::ResultXor(records, codec), manual);
  EXPECT_TRUE(Client::VerifyResult(records, manual, codec).ok());
}

TEST(ClientTest, OrderInvariance) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records = SmallDataset(8);
  crypto::Digest vt = Client::ResultXor(records, codec);
  std::reverse(records.begin(), records.end());
  EXPECT_TRUE(Client::VerifyResult(records, vt, codec).ok());
}

TEST(ClientTest, EmptyResultHasZeroXor) {
  RecordCodec codec(kRecSize);
  EXPECT_TRUE(Client::ResultXor({}, codec).IsZero());
}

// --- adversary -------------------------------------------------------------------

class AttackTest : public ::testing::TestWithParam<AttackMode> {};

TEST_P(AttackTest, AttackChangesResultXor) {
  RecordCodec codec(kRecSize);
  std::vector<Record> honest = SmallDataset(12);
  std::vector<Record> tampered = ApplyAttack(honest, GetParam(), codec, 7);
  crypto::Digest honest_xor = Client::ResultXor(honest, codec);
  if (GetParam() == AttackMode::kNone) {
    EXPECT_EQ(Client::ResultXor(tampered, codec), honest_xor);
  } else {
    EXPECT_NE(Client::ResultXor(tampered, codec), honest_xor)
        << "attack escaped the XOR check";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, AttackTest,
    ::testing::Values(AttackMode::kNone, AttackMode::kDropOne,
                      AttackMode::kDropAll, AttackMode::kInjectFake,
                      AttackMode::kTamperPayload, AttackMode::kTamperKey,
                      AttackMode::kDuplicateOne));

TEST(AttackTest, EmptyHonestResultStillAttacked) {
  RecordCodec codec(kRecSize);
  std::vector<Record> tampered =
      ApplyAttack({}, AttackMode::kDropOne, codec, 3);
  EXPECT_FALSE(tampered.empty());  // degrades to injection
}

// --- SAE entities -----------------------------------------------------------------

class SaeEntitiesTest : public ::testing::Test {
 protected:
  SaeEntitiesTest()
      : sp_(ServiceProvider::Options{kRecSize, 256, 256, {}}),
        te_(TrustedEntity::Options{kRecSize, crypto::HashScheme::kSha1, 256,
                                   {}, {}}),
        owner_(kRecSize) {}

  void Outsource(size_t n) {
    ASSERT_TRUE(owner_.SetDataset(SmallDataset(n)).ok());
    ASSERT_TRUE(owner_.Outsource(&sp_, &te_, &do_sp_, &do_te_).ok());
  }

  ServiceProvider sp_;
  TrustedEntity te_;
  DataOwner owner_;
  sim::Channel do_sp_{"DO->SP"};
  sim::Channel do_te_{"DO->TE"};
};

TEST_F(SaeEntitiesTest, OutsourceShipsDatasetToBothParties) {
  Outsource(100);
  EXPECT_EQ(do_sp_.total_bytes(), do_te_.total_bytes());
  EXPECT_GT(do_sp_.total_bytes(), 100 * kRecSize);
  EXPECT_EQ(sp_.table().size(), 100u);
  EXPECT_EQ(te_.xb_tree().size(), 100u);
}

TEST_F(SaeEntitiesTest, HonestQueryVerifies) {
  Outsource(200);
  auto results = sp_.ExecuteRange(500, 1500);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), 101u);
  auto vt = te_.GenerateVt(500, 1500);
  ASSERT_TRUE(vt.ok());
  EXPECT_TRUE(Client::VerifyResult(results.value(), vt.value(),
                                   owner_.codec())
                  .ok());
}

TEST_F(SaeEntitiesTest, UpdatesPropagate) {
  Outsource(50);
  RecordCodec codec(kRecSize);
  Record fresh = codec.MakeRecord(1000, 105);
  ASSERT_TRUE(
      owner_.InsertRecord(fresh, &sp_, &te_, &do_sp_, &do_te_).ok());
  ASSERT_TRUE(owner_.DeleteRecord(3, &sp_, &te_, &do_sp_, &do_te_).ok());

  auto results = sp_.ExecuteRange(0, 10000);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), 50u);  // +1 insert, -1 delete
  auto vt = te_.GenerateVt(0, 10000);
  ASSERT_TRUE(vt.ok());
  EXPECT_TRUE(
      Client::VerifyResult(results.value(), vt.value(), owner_.codec()).ok());
}

TEST_F(SaeEntitiesTest, EpochPublishedToBothParties) {
  Outsource(30);
  // Outsourcing publishes epoch 1 to SP and TE; every update bumps it.
  EXPECT_EQ(owner_.epoch(), 1u);
  EXPECT_EQ(sp_.epoch(), 1u);
  EXPECT_EQ(te_.epoch(), 1u);

  RecordCodec codec(kRecSize);
  ASSERT_TRUE(owner_
                  .InsertRecord(codec.MakeRecord(1000, 105), &sp_, &te_,
                                &do_sp_, &do_te_)
                  .ok());
  EXPECT_EQ(owner_.epoch(), 2u);
  EXPECT_EQ(sp_.epoch(), 2u);
  EXPECT_EQ(te_.epoch(), 2u);
  // The TE stamps its epoch into every token.
  EXPECT_EQ(te_.GenerateVt(0, 1000).value().epoch, 2u);

  // A failed update must not advance the epoch.
  EXPECT_EQ(owner_.DeleteRecord(9999, &sp_, &te_, &do_sp_, &do_te_).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(owner_.epoch(), 2u);

  // The full client check accepts only the published epoch.
  auto results = sp_.ExecuteRange(0, 10000).ValueOrDie();
  auto vt = te_.GenerateVt(0, 10000).ValueOrDie();
  EXPECT_TRUE(Client::VerifyResult(results, vt, sp_.epoch(), owner_.epoch(),
                                   owner_.codec())
                  .ok());
  // Stale token (older epoch) -> distinct freshness failure.
  VerificationToken stale = vt;
  stale.epoch = 1;
  EXPECT_EQ(Client::VerifyResult(results, stale, sp_.epoch(),
                                 owner_.epoch(), owner_.codec())
                .code(),
            StatusCode::kStaleEpoch);
  // Stale SP claim -> distinct freshness failure.
  EXPECT_EQ(Client::VerifyResult(results, vt, /*claimed=*/1,
                                 owner_.epoch(), owner_.codec())
                .code(),
            StatusCode::kStaleEpoch);
}

TEST(TeStorageTest, SmallFractionOfSpAtPaperRecordSize) {
  // With the paper's 500-byte records the TE keeps ~68 bytes per record
  // (36-byte tuple chunk + amortized XB-tree entry) versus the SP's 500-byte
  // record + index posting.
  constexpr size_t kPaperRecSize = 500;
  RecordCodec codec(kPaperRecSize);
  std::vector<Record> records;
  for (uint64_t id = 1; id <= 2000; ++id) {
    records.push_back(codec.MakeRecord(id, uint32_t(id * 10)));
  }
  ServiceProvider sp(ServiceProvider::Options{kPaperRecSize, 256, 256, {}});
  TrustedEntity te(TrustedEntity::Options{
      kPaperRecSize, crypto::HashScheme::kSha1, 256, {}, {}});
  ASSERT_TRUE(sp.LoadDataset(records).ok());
  ASSERT_TRUE(te.LoadDataset(records).ok());
  EXPECT_LT(te.StorageBytes(), sp.StorageBytes() / 4);
}

TEST_F(SaeEntitiesTest, VtCostIndependentOfResultSize) {
  Outsource(4000);
  auto before = te_.pool_stats();
  ASSERT_TRUE(te_.GenerateVt(0, 40000 / 2).ok());  // half the dataset
  uint64_t wide = (te_.pool_stats() - before).accesses;
  before = te_.pool_stats();
  ASSERT_TRUE(te_.GenerateVt(1000, 1100).ok());  // tiny range
  uint64_t narrow = (te_.pool_stats() - before).accesses;
  // Both are O(height); the wide query must not scale with result size.
  EXPECT_LT(wide, narrow + 12 * te_.xb_tree().height());
}

// --- TOM entities -----------------------------------------------------------------

class TomEntitiesTest : public ::testing::Test {
 protected:
  static TomDataOwner::Options OwnerOptions() {
    TomDataOwner::Options o;
    o.record_size = kRecSize;
    o.rsa_modulus_bits = 512;  // fast for tests
    o.pool_pages = 256;
    return o;
  }
  static TomServiceProvider::Options SpOptions() {
    TomServiceProvider::Options o;
    o.record_size = kRecSize;
    o.index_pool_pages = 256;
    o.heap_pool_pages = 256;
    return o;
  }

  TomEntitiesTest() : owner_(OwnerOptions()), sp_(SpOptions()) {}

  void Load(size_t n) {
    auto records = SmallDataset(n);
    ASSERT_TRUE(owner_.LoadDataset(records).ok());
    ASSERT_TRUE(
        sp_.LoadDataset(records, owner_.signature(), owner_.epoch()).ok());
  }

  Status Verify(Key lo, Key hi, const std::vector<Record>& results,
                const mbtree::VerificationObject& vo) {
    return TomClient::Verify(lo, hi, results, vo, owner_.public_key(),
                             codec_, crypto::HashScheme::kSha1,
                             owner_.epoch());
  }

  TomDataOwner owner_;
  TomServiceProvider sp_;
  RecordCodec codec_{kRecSize};
};

TEST_F(TomEntitiesTest, HonestQueryVerifies) {
  Load(300);
  auto response = sp_.ExecuteRange(500, 1500);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().results.size(), 101u);
  EXPECT_EQ(response.value().vo.epoch, 1u);
  EXPECT_TRUE(
      Verify(500, 1500, response.value().results, response.value().vo).ok());
}

TEST_F(TomEntitiesTest, DoAndSpAdsStayInSync) {
  Load(100);
  EXPECT_EQ(owner_.ads().root_digest(), sp_.ads().root_digest());
  EXPECT_EQ(owner_.epoch(), 1u);
  RecordCodec codec(kRecSize);
  Record fresh = codec.MakeRecord(500, 333);
  ASSERT_TRUE(owner_.InsertRecord(fresh).ok());
  ASSERT_TRUE(
      sp_.ApplyInsert(fresh, owner_.signature(), owner_.epoch()).ok());
  EXPECT_EQ(owner_.ads().root_digest(), sp_.ads().root_digest());
  EXPECT_EQ(owner_.epoch(), 2u);
  EXPECT_EQ(sp_.epoch(), 2u);
  ASSERT_TRUE(owner_.DeleteRecord(7).ok());
  ASSERT_TRUE(sp_.ApplyDelete(7, owner_.signature(), owner_.epoch()).ok());
  EXPECT_EQ(owner_.ads().root_digest(), sp_.ads().root_digest());
  EXPECT_EQ(owner_.epoch(), 3u);
}

TEST_F(TomEntitiesTest, QueryAfterUpdatesVerifies) {
  Load(150);
  RecordCodec codec(kRecSize);
  for (uint64_t id = 500; id < 520; ++id) {
    Record fresh = codec.MakeRecord(id, uint32_t(id * 3));
    ASSERT_TRUE(owner_.InsertRecord(fresh).ok());
    ASSERT_TRUE(
        sp_.ApplyInsert(fresh, owner_.signature(), owner_.epoch()).ok());
  }
  for (uint64_t id = 10; id < 20; ++id) {
    ASSERT_TRUE(owner_.DeleteRecord(id).ok());
    ASSERT_TRUE(sp_.ApplyDelete(id, owner_.signature(), owner_.epoch()).ok());
  }
  auto response = sp_.ExecuteRange(0, 5000);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(
      Verify(0, 5000, response.value().results, response.value().vo).ok());
}

TEST_F(TomEntitiesTest, TamperedResultsRejected) {
  Load(200);
  auto response = sp_.ExecuteRange(100, 900);
  ASSERT_TRUE(response.ok());
  for (AttackMode mode :
       {AttackMode::kDropOne, AttackMode::kInjectFake,
        AttackMode::kTamperPayload, AttackMode::kDropAll}) {
    std::vector<Record> tampered =
        ApplyAttack(response.value().results, mode, codec_, 13);
    EXPECT_FALSE(
        Verify(100, 900, tampered, response.value().vo).ok())
        << "mode " << int(mode);
  }
}

TEST_F(TomEntitiesTest, MbTreeFanoutBelowBPlusTree) {
  Load(100);
  // The ADS digests shrink fanout: 127 vs 340 at the leaf level — the
  // mechanism behind TOM's higher SP cost in Fig. 6.
  EXPECT_LT(sp_.ads().max_leaf_entries(), 340u / 2);
}

}  // namespace
}  // namespace sae::core
