// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Functional coverage for the verified query-operator layer: all six
// operators (point, COUNT, SUM, MIN, MAX, top-k) plus the scan baseline,
// executed and verified end to end in SAE, TOM and sharded deployments,
// replayed against a brute-force oracle; the dbms plan-layer primitives
// (EvaluateAnswer / CheckAnswer / MergeAnswers); the wire round-trips; and
// the sigchain operator verifier. The adversarial side of the operator
// matrix lives in security_test.cc and sharding_test.cc.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/client.h"
#include "core/messages.h"
#include "core/sharded_system.h"
#include "core/system.h"
#include "dbms/query.h"
#include "sigchain/sig_chain.h"
#include "workload/queries.h"

namespace sae {
namespace {

using core::Record;
using dbms::QueryAnswer;
using dbms::QueryOp;
using dbms::QueryRequest;
using storage::RecordCodec;

constexpr size_t kRecSize = 64;

std::vector<Record> Dataset(size_t n) {
  RecordCodec codec(kRecSize);
  std::vector<Record> out;
  for (uint64_t id = 1; id <= n; ++id) {
    // Deliberate duplicate keys (id*10 % 970) so ties exercise the
    // deterministic top-k order.
    out.push_back(codec.MakeRecord(id, uint32_t((id * 10) % 970)));
  }
  return out;
}

// Brute-force oracle over the raw dataset.
std::vector<Record> OracleRange(const std::vector<Record>& all, uint32_t lo,
                                uint32_t hi) {
  std::vector<Record> out;
  for (const Record& r : all) {
    if (r.key >= lo && r.key <= hi) out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    return a.key != b.key ? a.key < b.key : a.id < b.id;
  });
  return out;
}

std::vector<QueryRequest> AllOperators(uint32_t lo, uint32_t hi,
                                       uint32_t limit = 5) {
  return {QueryRequest::Scan(lo, hi),  QueryRequest::Point(lo),
          QueryRequest::Count(lo, hi), QueryRequest::Sum(lo, hi),
          QueryRequest::Min(lo, hi),   QueryRequest::Max(lo, hi),
          QueryRequest::TopK(lo, hi, limit)};
}

// Checks an accepted outcome against the oracle-derived expectation.
template <typename Outcome>
void ExpectMatchesOracle(const Outcome& outcome, const QueryRequest& request,
                         const std::vector<Record>& all) {
  ASSERT_TRUE(outcome.verification.ok())
      << dbms::QueryOpName(request.op) << ": "
      << outcome.verification.ToString();
  std::vector<Record> range = OracleRange(all, request.lo, request.hi);
  QueryAnswer expect = dbms::EvaluateAnswer(request, range);
  EXPECT_EQ(outcome.answer, expect) << dbms::QueryOpName(request.op);
  // The witness is always the full range record set.
  EXPECT_EQ(outcome.results.size(), range.size());
  // Spot-check the derived dimensions against a from-scratch fold.
  uint64_t sum = 0;
  for (const Record& r : range) sum += r.key;
  EXPECT_EQ(outcome.answer.count, range.size());
  EXPECT_EQ(outcome.answer.sum, sum);
  if (!range.empty()) {
    ASSERT_TRUE(outcome.answer.has_extrema);
    EXPECT_EQ(outcome.answer.min_key, range.front().key);
    EXPECT_EQ(outcome.answer.max_key, range.back().key);
  } else {
    EXPECT_FALSE(outcome.answer.has_extrema);
  }
}

// --- plan-layer primitives --------------------------------------------------------

TEST(QueryPlanTest, EvaluateAnswerDerivesEveryDimension) {
  RecordCodec codec(kRecSize);
  std::vector<Record> range = {codec.MakeRecord(1, 30), codec.MakeRecord(2, 10),
                               codec.MakeRecord(3, 20)};
  QueryAnswer a = dbms::EvaluateAnswer(QueryRequest::Count(0, 100), range);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 60u);
  EXPECT_TRUE(a.has_extrema);
  EXPECT_EQ(a.min_key, 10u);
  EXPECT_EQ(a.max_key, 30u);
  EXPECT_TRUE(a.records.empty());  // pure aggregate: no rows of its own
  // Scan/point answers carry no rows either — their rows ARE the witness,
  // held once by the protocol layer, never duplicated into the answer.
  EXPECT_TRUE(
      dbms::EvaluateAnswer(QueryRequest::Scan(0, 100), range).records.empty());
  EXPECT_TRUE(
      dbms::EvaluateAnswer(QueryRequest::Point(10), range).records.empty());
}

TEST(QueryPlanTest, TopKRanksDescendingWithIdTieBreak) {
  RecordCodec codec(kRecSize);
  std::vector<Record> range = {codec.MakeRecord(1, 20), codec.MakeRecord(2, 30),
                               codec.MakeRecord(3, 30), codec.MakeRecord(4, 10)};
  QueryAnswer a = dbms::EvaluateAnswer(QueryRequest::TopK(0, 100, 3), range);
  ASSERT_EQ(a.records.size(), 3u);
  EXPECT_EQ(a.records[0].id, 3u);  // key 30, higher id first
  EXPECT_EQ(a.records[1].id, 2u);  // key 30
  EXPECT_EQ(a.records[2].id, 1u);  // key 20
  // count/sum still summarize the whole range, not just the winners.
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum, 90u);
}

TEST(QueryPlanTest, TopKLimitEdgeCases) {
  RecordCodec codec(kRecSize);
  std::vector<Record> range = {codec.MakeRecord(1, 20), codec.MakeRecord(2, 30)};
  // Limit above the cardinality returns everything, ranked.
  QueryAnswer big = dbms::EvaluateAnswer(QueryRequest::TopK(0, 100, 10), range);
  EXPECT_EQ(big.records.size(), 2u);
  // Limit zero returns no rows but still derives the aggregates.
  QueryAnswer zero = dbms::EvaluateAnswer(QueryRequest::TopK(0, 100, 0), range);
  EXPECT_TRUE(zero.records.empty());
  EXPECT_EQ(zero.count, 2u);
}

TEST(QueryPlanTest, CheckAnswerCatchesEveryTamperedDimension) {
  RecordCodec codec(kRecSize);
  std::vector<Record> range = {codec.MakeRecord(1, 30), codec.MakeRecord(2, 10)};
  QueryRequest request = QueryRequest::Sum(0, 100);
  QueryAnswer honest = dbms::EvaluateAnswer(request, range);
  EXPECT_TRUE(dbms::CheckAnswer(request, range, honest).ok());

  QueryAnswer bad = honest;
  ++bad.count;
  EXPECT_EQ(dbms::CheckAnswer(request, range, bad).code(),
            StatusCode::kVerificationFailure);
  bad = honest;
  bad.sum -= 1;
  EXPECT_EQ(dbms::CheckAnswer(request, range, bad).code(),
            StatusCode::kVerificationFailure);
  bad = honest;
  bad.min_key = 5;
  EXPECT_EQ(dbms::CheckAnswer(request, range, bad).code(),
            StatusCode::kVerificationFailure);
  bad = honest;
  bad.op = QueryOp::kCount;
  EXPECT_EQ(dbms::CheckAnswer(request, range, bad).code(),
            StatusCode::kVerificationFailure);

  QueryRequest topk = QueryRequest::TopK(0, 100, 2);
  QueryAnswer winners = dbms::EvaluateAnswer(topk, range);
  winners.records.pop_back();  // silent truncation
  EXPECT_EQ(dbms::CheckAnswer(topk, range, winners).code(),
            StatusCode::kVerificationFailure);
}

TEST(QueryPlanTest, MergeAnswersFoldsPartials) {
  RecordCodec codec(kRecSize);
  std::vector<Record> left = {codec.MakeRecord(1, 10), codec.MakeRecord(2, 40)};
  std::vector<Record> right = {codec.MakeRecord(3, 60), codec.MakeRecord(4, 90)};
  std::vector<Record> whole = left;
  whole.insert(whole.end(), right.begin(), right.end());

  for (const QueryRequest& request : AllOperators(0, 100, 3)) {
    QueryRequest left_req = request, right_req = request;
    left_req.hi = 50;
    right_req.lo = 51;
    QueryAnswer merged = dbms::MergeAnswers(
        request, {dbms::EvaluateAnswer(left_req, left),
                  dbms::EvaluateAnswer(right_req, right)});
    EXPECT_EQ(merged, dbms::EvaluateAnswer(request, whole))
        << dbms::QueryOpName(request.op);
  }
}

TEST(QueryPlanTest, MergeAnswersEmptyPartsKeepNoExtrema) {
  QueryRequest request = QueryRequest::Min(0, 100);
  QueryAnswer merged = dbms::MergeAnswers(
      request, {dbms::EvaluateAnswer(request, {}),
                dbms::EvaluateAnswer(request, {})});
  EXPECT_EQ(merged.count, 0u);
  EXPECT_FALSE(merged.has_extrema);
}

// --- wire round-trips -------------------------------------------------------------

TEST(QueryPlanWireTest, RequestRoundTripsAllOperators) {
  for (const QueryRequest& request : AllOperators(123, 456, 7)) {
    auto bytes = core::SerializeQueryRequest(request);
    auto back = core::DeserializeQueryRequest(bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), request) << dbms::QueryOpName(request.op);
  }
}

TEST(QueryPlanWireTest, AnswerRoundTripsWithWitness) {
  RecordCodec codec(kRecSize);
  std::vector<Record> range = {codec.MakeRecord(1, 30), codec.MakeRecord(2, 10),
                               codec.MakeRecord(3, 20)};
  for (const QueryRequest& request : AllOperators(0, 100, 2)) {
    QueryAnswer answer = dbms::EvaluateAnswer(request, range);
    auto bytes = core::SerializeQueryAnswer(answer, range, 9, codec);
    auto back = core::DeserializeQueryAnswer(bytes, codec);
    ASSERT_TRUE(back.ok()) << dbms::QueryOpName(request.op);
    EXPECT_EQ(back.value().epoch, 9u);
    EXPECT_EQ(back.value().witness, range);
    EXPECT_EQ(back.value().answer, answer) << dbms::QueryOpName(request.op);
  }
}

TEST(QueryPlanWireTest, NonTopKAnswerRowsOnTheWireRejected) {
  // A malicious encoder cannot smuggle answer rows distinct from the
  // witness for scan/point/aggregate ops — the decoder refuses them.
  RecordCodec codec(kRecSize);
  std::vector<Record> range = {codec.MakeRecord(1, 30)};
  QueryAnswer answer = dbms::EvaluateAnswer(QueryRequest::TopK(0, 100, 1),
                                            range);
  auto bytes = core::SerializeQueryAnswer(answer, range, 1, codec);
  bytes[1] = uint8_t(QueryOp::kCount);  // rewrite the op byte
  auto back = core::DeserializeQueryAnswer(bytes, codec);
  EXPECT_FALSE(back.ok());
}

// --- SAE end to end ---------------------------------------------------------------

class SaeOperatorTest : public ::testing::TestWithParam<crypto::HashScheme> {};

TEST_P(SaeOperatorTest, AllOperatorsVerifyAgainstOracle) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  core::SaeSystem system(options);
  std::vector<Record> all = Dataset(400);
  SAE_CHECK_OK(system.Load(all));

  for (uint32_t lo : {0u, 100u, 965u}) {
    for (const QueryRequest& request : AllOperators(lo, lo + 120, 5)) {
      auto outcome = system.Query(request);
      ASSERT_TRUE(outcome.ok());
      ExpectMatchesOracle(outcome.value(), request, all);
    }
  }
}

TEST_P(SaeOperatorTest, EmptyRangeAggregatesVerify) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  core::SaeSystem system(options);
  std::vector<Record> all = Dataset(50);
  SAE_CHECK_OK(system.Load(all));

  for (const QueryRequest& request : AllOperators(5000, 6000, 3)) {
    auto outcome = system.Query(request);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().verification.ok());
    EXPECT_EQ(outcome.value().answer.count, 0u);
    EXPECT_FALSE(outcome.value().answer.has_extrema);
    EXPECT_TRUE(outcome.value().answer.records.empty());
  }
}

TEST_P(SaeOperatorTest, ScanWrapperMatchesExplicitScanRequest) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  core::SaeSystem system(options);
  std::vector<Record> all = Dataset(200);
  SAE_CHECK_OK(system.Load(all));

  auto via_wrapper = system.Query(100, 400);
  auto via_request = system.Query(QueryRequest::Scan(100, 400));
  ASSERT_TRUE(via_wrapper.ok());
  ASSERT_TRUE(via_request.ok());
  EXPECT_TRUE(via_wrapper.value().verification.ok());
  EXPECT_EQ(via_wrapper.value().results, via_request.value().results);
  EXPECT_EQ(via_wrapper.value().answer, via_request.value().answer);
  // Scan rows live once, as the witness; the answer carries none.
  EXPECT_TRUE(via_wrapper.value().answer.records.empty());
  EXPECT_FALSE(via_wrapper.value().results.empty());
}

TEST_P(SaeOperatorTest, OperatorsVerifyAcrossUpdates) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  core::SaeSystem system(options);
  std::vector<Record> all = Dataset(200);
  SAE_CHECK_OK(system.Load(all));
  RecordCodec codec(kRecSize);

  auto before = system.Query(QueryRequest::Count(0, 1000));
  ASSERT_TRUE(before.ok());
  uint64_t count_before = before.value().answer.count;

  ASSERT_TRUE(system.Insert(codec.MakeRecord(9001, 500)).ok());
  ASSERT_TRUE(system.Delete(1).ok());

  auto after = system.Query(QueryRequest::Count(0, 1000));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().verification.ok());
  EXPECT_EQ(after.value().answer.count, count_before);  // +1 insert, -1 delete
  auto max_after = system.Query(QueryRequest::Max(0, 1000));
  ASSERT_TRUE(max_after.ok());
  EXPECT_TRUE(max_after.value().verification.ok());
}

INSTANTIATE_TEST_SUITE_P(BothHashSchemes, SaeOperatorTest,
                         ::testing::Values(crypto::HashScheme::kSha1,
                                           crypto::HashScheme::kSha256Trunc));

// --- TOM end to end ---------------------------------------------------------------

TEST(TomOperatorTest, AllOperatorsVerifyAgainstOracle) {
  core::TomSystem::Options options;
  options.record_size = kRecSize;
  options.rsa_modulus_bits = 512;  // fast for tests
  core::TomSystem system(options);
  std::vector<Record> all = Dataset(300);
  SAE_CHECK_OK(system.Load(all));

  for (const QueryRequest& request : AllOperators(100, 400, 5)) {
    auto outcome = system.Query(request);
    ASSERT_TRUE(outcome.ok());
    ExpectMatchesOracle(outcome.value(), request, all);
  }
  // Empty range.
  auto empty = system.Query(QueryRequest::Count(5000, 6000));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().verification.ok());
  EXPECT_EQ(empty.value().answer.count, 0u);
}

// --- sharded deployments ----------------------------------------------------------

TEST(ShardedOperatorTest, CrossShardAggregatesFoldAndVerify) {
  core::ShardedSaeSystem::Options options;
  options.base.record_size = kRecSize;
  std::vector<Record> all = Dataset(500);
  core::ShardedSaeSystem sharded(core::ShardRouter({200, 400, 700}), options);
  SAE_CHECK_OK(sharded.Load(all));

  core::SaeSystem::Options oracle_options;
  oracle_options.record_size = kRecSize;
  core::SaeSystem oracle(oracle_options);
  SAE_CHECK_OK(oracle.Load(all));

  // Every query straddles at least one fence.
  for (uint32_t lo : {150u, 350u, 0u}) {
    for (const QueryRequest& request : AllOperators(lo, lo + 300, 6)) {
      auto composite = sharded.Query(request);
      auto plain = oracle.Query(request);
      ASSERT_TRUE(composite.ok());
      ASSERT_TRUE(plain.ok());
      EXPECT_TRUE(composite.value().verification.ok())
          << dbms::QueryOpName(request.op) << ": "
          << composite.value().verification.ToString();
      // The composite fold is bit-identical to the unsharded answer.
      EXPECT_EQ(composite.value().answer, plain.value().answer)
          << dbms::QueryOpName(request.op);
      EXPECT_EQ(composite.value().results, plain.value().results);
      ExpectMatchesOracle(composite.value(), request, all);
    }
  }
}

TEST(ShardedOperatorTest, TomCrossShardAggregatesFoldAndVerify) {
  core::ShardedTomSystem::Options options;
  options.base.record_size = kRecSize;
  options.base.rsa_modulus_bits = 512;
  std::vector<Record> all = Dataset(300);
  core::ShardedTomSystem sharded(core::ShardRouter({300, 600}), options);
  SAE_CHECK_OK(sharded.Load(all));

  for (const QueryRequest& request : AllOperators(100, 800, 4)) {
    auto composite = sharded.Query(request);
    ASSERT_TRUE(composite.ok());
    EXPECT_TRUE(composite.value().verification.ok())
        << dbms::QueryOpName(request.op);
    ExpectMatchesOracle(composite.value(), request, all);
  }
}

TEST(ShardedOperatorTest, ThinClientVerifiesCompositeAnswer) {
  core::ShardedSaeSystem::Options options;
  options.base.record_size = kRecSize;
  std::vector<Record> all = Dataset(400);
  core::ShardedSaeSystem sharded(core::ShardRouter({300, 600}), options);
  SAE_CHECK_OK(sharded.Load(all));
  RecordCodec codec(kRecSize);

  QueryRequest request = QueryRequest::Sum(100, 800);
  auto outcome = sharded.Query(request);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.value().verification.ok());

  // Re-verify from published trusted state only, as a thin client would.
  auto slices_of = [&](const core::ShardedSaeSystem::QueryOutcome& o) {
    std::vector<core::Client::ShardSlice> slices;
    for (const auto& slice : o.slices) {
      core::Client::ShardSlice s;
      s.shard = slice.shard;
      s.lo = slice.lo;
      s.hi = slice.hi;
      s.results = slice.outcome.results;
      s.answer = slice.outcome.answer;
      s.vt = slice.outcome.vt;
      s.claimed_epoch = slice.outcome.claimed_epoch;
      slices.push_back(std::move(s));
    }
    return slices;
  };
  std::vector<core::Client::ShardSlice> slices = slices_of(outcome.value());
  EXPECT_TRUE(core::Client::VerifyShardedAnswer(
                  request, outcome.value().answer, slices,
                  sharded.router().fences(), sharded.ShardEpochs(), codec)
                  .ok());

  // A mis-folded composite (router tier lying about the SUM) is rejected
  // even though every slice is individually genuine.
  dbms::QueryAnswer forged = outcome.value().answer;
  forged.sum += 7;
  EXPECT_EQ(core::Client::VerifyShardedAnswer(
                request, forged, slices, sharded.router().fences(),
                sharded.ShardEpochs(), codec)
                .code(),
            StatusCode::kVerificationFailure);

  // A tampered slice answer is rejected with attribution.
  slices[1].answer.sum += 1;
  std::vector<std::pair<size_t, Status>> per_shard;
  Status st = core::Client::VerifyShardedAnswer(
      request, outcome.value().answer, slices, sharded.router().fences(),
      sharded.ShardEpochs(), codec, crypto::HashScheme::kSha1, &per_shard);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
  ASSERT_EQ(per_shard.size(), slices.size());
  EXPECT_FALSE(per_shard[1].second.ok());
  EXPECT_TRUE(per_shard[0].second.ok());
}

// --- sigchain operator verifier ---------------------------------------------------

TEST(SigChainOperatorTest, AggregateVerifiedFromChainProof) {
  sigchain::SigChainOwner::Options owner_options;
  owner_options.record_size = kRecSize;
  owner_options.rsa_modulus_bits = 512;
  sigchain::SigChainOwner owner(owner_options);
  sigchain::SigChainSp::Options sp_options;
  sp_options.record_size = kRecSize;
  sp_options.signature_bytes = 64;
  sigchain::SigChainSp sp(sp_options);

  RecordCodec codec(kRecSize);
  std::vector<Record> all;
  for (uint64_t id = 1; id <= 120; ++id) {
    all.push_back(codec.MakeRecord(id, uint32_t(id * 10)));
  }
  auto sigs = owner.SignDataset(all);
  ASSERT_TRUE(sigs.ok());
  ASSERT_TRUE(sp.LoadDataset(all, sigs.value(), owner.public_key()).ok());
  sp.SetEpoch(owner.epoch(), owner.epoch_signature());

  for (const QueryRequest& request : AllOperators(200, 800, 4)) {
    // Each operator's proof covers its own underlying range (the point
    // query's range is the single key).
    auto resp = sp.ExecuteRange(request.lo, request.hi).ValueOrDie();
    QueryAnswer answer = dbms::EvaluateAnswer(request, resp.results);
    EXPECT_TRUE(sigchain::SigChainClient::VerifyAnswer(
                    request, answer, resp.results, resp.vo,
                    owner.public_key(), codec, crypto::HashScheme::kSha1,
                    owner.epoch())
                    .ok())
        << dbms::QueryOpName(request.op);
  }
  auto response = sp.ExecuteRange(200, 800).ValueOrDie();

  // A lying aggregate over a perfectly proven witness is rejected.
  QueryRequest count = QueryRequest::Count(200, 800);
  QueryAnswer lie = dbms::EvaluateAnswer(count, response.results);
  ++lie.count;
  EXPECT_EQ(sigchain::SigChainClient::VerifyAnswer(
                count, lie, response.results, response.vo,
                owner.public_key(), codec, crypto::HashScheme::kSha1,
                owner.epoch())
                .code(),
            StatusCode::kVerificationFailure);
}

// --- operator-mix workload smoke over the engine ----------------------------------

TEST(OperatorWorkloadTest, MixedBatchAllOperatorsVerify) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  core::SaeSystem system(options);
  SAE_CHECK_OK(system.Load(Dataset(400)));

  workload::OperatorMixSpec spec;
  spec.count = 60;
  spec.domain_max = 970;
  spec.mix = {{QueryOp::kScan, 1.0}, {QueryOp::kPoint, 1.0},
              {QueryOp::kCount, 1.0}, {QueryOp::kSum, 1.0},
              {QueryOp::kMin, 1.0},  {QueryOp::kMax, 1.0},
              {QueryOp::kTopK, 1.0}};
  spec.extent_fractions = {0.01, 0.1, 0.4};
  std::vector<core::BatchQuery> batch;
  for (const auto& request : workload::GenerateOperatorMix(spec)) {
    batch.push_back(core::BatchQuery{request});
  }

  core::QueryEngine engine(core::QueryEngineOptions{4});
  auto run = engine.Run(&system, batch);
  EXPECT_EQ(run.stats.accepted, batch.size());
  EXPECT_EQ(run.stats.rejected, 0u);
  EXPECT_EQ(run.stats.failed, 0u);
}

}  // namespace
}  // namespace sae
