// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit + property tests for the B+-tree: ordered operations, duplicates,
// splits/merges with small fanouts, bulk load, and a randomized workload
// cross-checked against a std::multimap reference model.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "btree/bplus_tree.h"
#include "storage/page_store.h"
#include "util/random.h"

namespace sae::btree {
namespace {

using storage::BufferPool;
using storage::InMemoryPageStore;

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&store_, 256) {}

  std::unique_ptr<BPlusTree> MakeTree(size_t max_leaf = 0,
                                      size_t max_internal = 0) {
    BPlusTreeOptions options;
    options.max_leaf_entries = max_leaf;
    options.max_internal_keys = max_internal;
    auto r = BPlusTree::Create(&pool_, options);
    EXPECT_TRUE(r.ok());
    return std::move(r).ValueOrDie();
  }

  InMemoryPageStore store_;
  BufferPool pool_;
};

TEST_F(BTreeTest, EmptyTreeRangeIsEmpty) {
  auto tree = MakeTree();
  std::vector<BTreeEntry> out;
  ASSERT_TRUE(tree->RangeSearch(0, 1000, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  ASSERT_TRUE(tree->Validate().ok());
}

TEST_F(BTreeTest, InsertAndPointLookup) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(5, 500).ok());
  ASSERT_TRUE(tree->Insert(3, 300).ok());
  ASSERT_TRUE(tree->Insert(9, 900).ok());
  EXPECT_TRUE(tree->Contains(5, 500).value());
  EXPECT_TRUE(tree->Contains(3, 300).value());
  EXPECT_FALSE(tree->Contains(5, 501).value());
  EXPECT_FALSE(tree->Contains(4, 400).value());
  ASSERT_TRUE(tree->Validate().ok());
}

TEST_F(BTreeTest, DuplicateExactPairRejected) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(5, 500).ok());
  EXPECT_EQ(tree->Insert(5, 500).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(tree->Insert(5, 501).ok());  // same key, new rid is fine
}

TEST_F(BTreeTest, RangeSearchOrderedInclusive) {
  auto tree = MakeTree();
  for (uint32_t k : {50u, 10u, 30u, 20u, 40u}) {
    ASSERT_TRUE(tree->Insert(k, k * 10).ok());
  }
  std::vector<BTreeEntry> out;
  ASSERT_TRUE(tree->RangeSearch(20, 40, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, 20u);
  EXPECT_EQ(out[1].key, 30u);
  EXPECT_EQ(out[2].key, 40u);
}

TEST_F(BTreeTest, RangeRejectsInvertedBounds) {
  auto tree = MakeTree();
  std::vector<BTreeEntry> out;
  EXPECT_EQ(tree->RangeSearch(10, 5, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BTreeTest, SplitsGrowHeight) {
  auto tree = MakeTree(4, 4);
  for (uint32_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree->Insert(k, k).ok());
    ASSERT_TRUE(tree->Validate().ok()) << "after insert " << k;
  }
  EXPECT_GT(tree->height(), 2u);
  EXPECT_EQ(tree->size(), 100u);
  std::vector<BTreeEntry> out;
  ASSERT_TRUE(tree->RangeSearch(0, 99, &out).ok());
  EXPECT_EQ(out.size(), 100u);
}

TEST_F(BTreeTest, ReverseAndRandomInsertOrders) {
  for (int order = 0; order < 2; ++order) {
    auto tree = MakeTree(4, 4);
    std::vector<uint32_t> keys(200);
    for (uint32_t i = 0; i < 200; ++i) keys[i] = i;
    if (order == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      Rng rng(17);
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
      }
    }
    for (uint32_t k : keys) ASSERT_TRUE(tree->Insert(k, k).ok());
    ASSERT_TRUE(tree->Validate().ok());
    std::vector<BTreeEntry> out;
    ASSERT_TRUE(tree->RangeSearch(0, 1u << 30, &out).ok());
    ASSERT_EQ(out.size(), 200u);
    for (uint32_t i = 0; i < 200; ++i) EXPECT_EQ(out[i].key, i);
  }
}

TEST_F(BTreeTest, HeavyDuplicateKeysSpanLeaves) {
  auto tree = MakeTree(4, 4);
  // 50 postings under one key forces duplicates across many leaves.
  for (uint64_t rid = 0; rid < 50; ++rid) {
    ASSERT_TRUE(tree->Insert(7, rid).ok());
  }
  ASSERT_TRUE(tree->Insert(6, 1).ok());
  ASSERT_TRUE(tree->Insert(8, 1).ok());
  ASSERT_TRUE(tree->Validate().ok());

  std::vector<BTreeEntry> out;
  ASSERT_TRUE(tree->RangeSearch(7, 7, &out).ok());
  EXPECT_EQ(out.size(), 50u);
  for (uint64_t rid = 0; rid < 50; ++rid) {
    EXPECT_TRUE(tree->Contains(7, rid).value()) << rid;
  }
  // Delete each duplicate individually.
  for (uint64_t rid = 0; rid < 50; ++rid) {
    ASSERT_TRUE(tree->Delete(7, rid).ok()) << rid;
    ASSERT_TRUE(tree->Validate().ok());
  }
  out.clear();
  ASSERT_TRUE(tree->RangeSearch(7, 7, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(BTreeTest, DeleteMissingReportsNotFound) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(1, 1).ok());
  EXPECT_EQ(tree->Delete(2, 2).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree->Delete(1, 99).code(), StatusCode::kNotFound);
}

TEST_F(BTreeTest, DeleteShrinksHeightToLeaf) {
  auto tree = MakeTree(4, 4);
  for (uint32_t k = 0; k < 64; ++k) ASSERT_TRUE(tree->Insert(k, k).ok());
  EXPECT_GT(tree->height(), 1u);
  for (uint32_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(tree->Delete(k, k).ok()) << k;
    ASSERT_TRUE(tree->Validate().ok()) << "after delete " << k;
  }
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_EQ(tree->node_count(), 1u);
}

TEST_F(BTreeTest, BulkLoadMatchesIncremental) {
  std::vector<BTreeEntry> entries;
  for (uint32_t k = 0; k < 500; ++k) {
    entries.push_back(BTreeEntry{k * 2, k});
  }
  auto bulk = MakeTree(8, 8);
  ASSERT_TRUE(bulk->BulkLoad(entries).ok());
  ASSERT_TRUE(bulk->Validate().ok());
  EXPECT_EQ(bulk->size(), 500u);

  std::vector<BTreeEntry> out;
  ASSERT_TRUE(bulk->RangeSearch(0, 2000, &out).ok());
  ASSERT_EQ(out.size(), 500u);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), entries.begin(),
                         [](const BTreeEntry& a, const BTreeEntry& b) {
                           return a.key == b.key && a.rid == b.rid;
                         }));
}

TEST_F(BTreeTest, BulkLoadRejectsUnsorted) {
  auto tree = MakeTree();
  std::vector<BTreeEntry> entries{{5, 1}, {3, 2}};
  EXPECT_EQ(tree->BulkLoad(entries).code(), StatusCode::kInvalidArgument);
}

TEST_F(BTreeTest, BulkLoadRejectsNonEmptyTree) {
  auto tree = MakeTree();
  ASSERT_TRUE(tree->Insert(1, 1).ok());
  std::vector<BTreeEntry> entries{{5, 1}};
  EXPECT_EQ(tree->BulkLoad(entries).code(), StatusCode::kInvalidArgument);
}

TEST_F(BTreeTest, BulkLoadedTreeSupportsUpdates) {
  std::vector<BTreeEntry> entries;
  for (uint32_t k = 0; k < 300; ++k) entries.push_back(BTreeEntry{k * 3, k});
  auto tree = MakeTree(8, 8);
  ASSERT_TRUE(tree->BulkLoad(entries).ok());
  for (uint32_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree->Insert(k * 3 + 1, 1000 + k).ok());
  }
  for (uint32_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree->Delete(k * 3, k).ok());
  }
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->size(), 300u);
}

TEST_F(BTreeTest, BulkLoadPartialFill) {
  std::vector<BTreeEntry> entries;
  for (uint32_t k = 0; k < 400; ++k) entries.push_back(BTreeEntry{k, k});
  auto full = MakeTree(8, 8);
  auto seventy = MakeTree(8, 8);
  ASSERT_TRUE(full->BulkLoad(entries, 1.0).ok());
  ASSERT_TRUE(seventy->BulkLoad(entries, 0.7).ok());
  ASSERT_TRUE(full->Validate().ok());
  ASSERT_TRUE(seventy->Validate().ok());
  EXPECT_GT(seventy->node_count(), full->node_count());
}

TEST_F(BTreeTest, DefaultFanoutsMatchPageMath) {
  auto tree = MakeTree();
  // (4096 - 16) / 12 = 340 leaf entries; (4096 - 20) / 8 = 509 internal keys.
  EXPECT_EQ(tree->max_leaf_entries(), 340u);
  EXPECT_EQ(tree->max_internal_keys(), 509u);
}

// Property test: random interleaved inserts/deletes/range queries against a
// std::multimap model, with structural validation along the way.
class BTreeRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeRandomizedTest, MatchesReferenceModel) {
  InMemoryPageStore store;
  BufferPool pool(&store, 512);
  BPlusTreeOptions options;
  options.max_leaf_entries = 6;
  options.max_internal_keys = 5;
  auto tree = BPlusTree::Create(&pool, options).ValueOrDie();

  Rng rng(GetParam());
  std::multimap<uint32_t, uint64_t> model;
  uint64_t next_rid = 1;

  for (int step = 0; step < 2500; ++step) {
    double dice = rng.NextDouble();
    if (model.empty() || dice < 0.55) {
      uint32_t key = uint32_t(rng.NextBounded(200));  // few keys -> many dups
      uint64_t rid = next_rid++;
      ASSERT_TRUE(tree->Insert(key, rid).ok());
      model.emplace(key, rid);
    } else if (dice < 0.85) {
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      ASSERT_TRUE(tree->Delete(it->first, it->second).ok());
      model.erase(it);
    } else {
      uint32_t lo = uint32_t(rng.NextBounded(200));
      uint32_t hi = lo + uint32_t(rng.NextBounded(40));
      std::vector<BTreeEntry> got;
      ASSERT_TRUE(tree->RangeSearch(lo, hi, &got).ok());
      std::multiset<std::pair<uint32_t, uint64_t>> expect, actual;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        expect.emplace(it->first, it->second);
      }
      for (const auto& e : got) actual.emplace(e.key, e.rid);
      ASSERT_EQ(actual, expect) << "range [" << lo << "," << hi << "]";
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(tree->Validate().ok()) << "step " << step;
      ASSERT_EQ(tree->size(), model.size());
    }
  }
  ASSERT_TRUE(tree->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomizedTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sae::btree
