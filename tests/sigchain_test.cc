// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Tests for the signature-chaining baseline (Condensed-RSA over chained
// record hashes): honest verification, every attack mode, edge ranges, VO
// wire format, and the condensed-signature algebra.

#include <gtest/gtest.h>

#include "core/malicious_sp.h"
#include "sigchain/sig_chain.h"
#include "util/random.h"

namespace sae::sigchain {
namespace {

using storage::Record;
using storage::RecordCodec;

constexpr size_t kRecSize = 64;

class SigChainTest : public ::testing::Test {
 protected:
  static SigChainOwner::Options OwnerOptions() {
    SigChainOwner::Options o;
    o.record_size = kRecSize;
    o.rsa_modulus_bits = 512;  // fast for tests
    return o;
  }
  static SigChainSp::Options SpOptions() {
    SigChainSp::Options o;
    o.record_size = kRecSize;
    o.signature_bytes = 64;  // matches 512-bit RSA
    return o;
  }

  SigChainTest() : owner_(OwnerOptions()), sp_(SpOptions()), codec_(kRecSize) {}

  void Load(size_t n, uint32_t stride = 10) {
    std::vector<Record> records;
    for (uint64_t id = 1; id <= n; ++id) {
      records.push_back(codec_.MakeRecord(id, uint32_t(id * stride)));
    }
    auto sigs = owner_.SignDataset(records);
    ASSERT_TRUE(sigs.ok());
    ASSERT_TRUE(
        sp_.LoadDataset(records, sigs.value(), owner_.public_key()).ok());
    // The DO publishes epoch 1 with the signed dataset; the SP stamps it
    // into every VO.
    sp_.SetEpoch(owner_.epoch(), owner_.epoch_signature());
    ASSERT_EQ(owner_.epoch(), 1u);
  }

  Status QueryAndVerify(uint32_t lo, uint32_t hi,
                        size_t* result_count = nullptr) {
    auto response = sp_.ExecuteRange(lo, hi);
    if (!response.ok()) return response.status();
    if (result_count) *result_count = response.value().results.size();
    // Exercise the wire format every time.
    auto vo = SigChainVo::Deserialize(response.value().vo.Serialize());
    if (!vo.ok()) return vo.status();
    return SigChainClient::Verify(lo, hi, response.value().results,
                                  vo.value(), owner_.public_key(), codec_,
                                  crypto::HashScheme::kSha1, owner_.epoch());
  }

  SigChainOwner owner_;
  SigChainSp sp_;
  RecordCodec codec_;
};

TEST_F(SigChainTest, HonestQueriesVerify) {
  Load(200);
  size_t count = 0;
  EXPECT_TRUE(QueryAndVerify(500, 1500, &count).ok());
  EXPECT_EQ(count, 101u);
  EXPECT_TRUE(QueryAndVerify(0, 5000, &count).ok());
  EXPECT_TRUE(QueryAndVerify(777, 888, &count).ok());
}

TEST_F(SigChainTest, EdgeRangesVerify) {
  Load(100);
  // Touching the low edge (no left boundary).
  EXPECT_TRUE(QueryAndVerify(0, 200).ok());
  // Touching the high edge (no right boundary).
  EXPECT_TRUE(QueryAndVerify(900, 100000).ok());
  // Entire table.
  EXPECT_TRUE(QueryAndVerify(0, 100000).ok());
  // Empty result in a gap.
  size_t count = 99;
  EXPECT_TRUE(QueryAndVerify(15, 17, &count).ok());
  EXPECT_EQ(count, 0u);
}

TEST_F(SigChainTest, EveryAttackModeDetected) {
  Load(150);
  auto response = sp_.ExecuteRange(300, 1000).ValueOrDie();
  for (core::AttackMode mode :
       {core::AttackMode::kDropOne, core::AttackMode::kDropAll,
        core::AttackMode::kInjectFake, core::AttackMode::kTamperPayload,
        core::AttackMode::kTamperKey, core::AttackMode::kDuplicateOne}) {
    std::vector<Record> tampered =
        core::ApplyAttack(response.results, mode, codec_, 5);
    Status st = SigChainClient::Verify(300, 1000, tampered, response.vo,
                                       owner_.public_key(), codec_,
                                       crypto::HashScheme::kSha1,
                                       owner_.epoch());
    EXPECT_EQ(st.code(), StatusCode::kVerificationFailure)
        << "mode " << int(mode);
  }
  // The honest result still verifies.
  EXPECT_TRUE(SigChainClient::Verify(300, 1000, response.results, response.vo,
                                     owner_.public_key(), codec_,
                                     crypto::HashScheme::kSha1,
                                     owner_.epoch())
                  .ok());
}

TEST_F(SigChainTest, BoundaryTruncationDetected) {
  Load(100);
  auto response = sp_.ExecuteRange(200, 700).ValueOrDie();
  // Claim the result touches the table edge by dropping the left boundary
  // and faking the sentinel.
  SigChainVo forged = response.vo;
  forged.left_boundary.clear();
  forged.outer_left = LowSentinel();
  EXPECT_FALSE(SigChainClient::Verify(200, 700, response.results, forged,
                                      owner_.public_key(), codec_,
                                      crypto::HashScheme::kSha1,
                                      owner_.epoch())
                   .ok());
}

TEST_F(SigChainTest, WrongRangeClaimDetected) {
  Load(100);
  auto response = sp_.ExecuteRange(200, 700).ValueOrDie();
  // The same VO cannot prove a wider query.
  EXPECT_FALSE(SigChainClient::Verify(200, 900, response.results,
                                      response.vo, owner_.public_key(),
                                      codec_, crypto::HashScheme::kSha1,
                                      owner_.epoch())
                   .ok());
}

TEST_F(SigChainTest, VoSerializationRoundTrip) {
  Load(80);
  auto response = sp_.ExecuteRange(100, 400).ValueOrDie();
  auto bytes = response.vo.Serialize();
  auto back = SigChainVo::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Serialize(), bytes);
  // Truncations are rejected cleanly.
  for (size_t cut : {size_t(0), bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> t(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(SigChainVo::Deserialize(t).ok());
  }
}

TEST_F(SigChainTest, SignatureStorageIsPerRecord) {
  Load(200);
  // 200 signatures of 64 bytes on 4096-byte pages.
  EXPECT_GE(sp_.SignatureStorageBytes(), 200u * 64);
}

// --- batch verification -------------------------------------------------------
//
// VerifyBatch must be verdict-identical to per-item VerifyAnswer while
// paying for the RSA work once: one epoch-token check per distinct token
// and one public-exponent modexp for the whole batch's condensed
// signatures (randomized small-exponent combination, per-item fallback on
// failure for attribution).

class SigChainBatchTest : public SigChainTest {
 protected:
  SigChainClient::BatchItem MakeItem(uint32_t lo, uint32_t hi) {
    auto response = sp_.ExecuteRange(lo, hi).ValueOrDie();
    SigChainClient::BatchItem item;
    item.request = dbms::QueryRequest::Scan(lo, hi);
    item.claimed = dbms::EvaluateAnswer(item.request, response.results);
    item.witness = std::move(response.results);
    item.vo = std::move(response.vo);
    return item;
  }

  // The unbatched reference verdict for one item.
  Status Unbatched(const SigChainClient::BatchItem& item) {
    return SigChainClient::VerifyAnswer(
        item.request, item.claimed, item.witness, item.vo,
        owner_.public_key(), codec_, crypto::HashScheme::kSha1,
        owner_.epoch());
  }
};

TEST_F(SigChainBatchTest, HonestBatchAllAcceptedLikeUnbatched) {
  Load(200);
  std::vector<SigChainClient::BatchItem> items;
  items.push_back(MakeItem(100, 600));
  items.push_back(MakeItem(500, 1500));
  items.push_back(MakeItem(0, 80));        // touches the low table edge
  items.push_back(MakeItem(15, 17));       // empty result
  items.push_back(MakeItem(100, 600));     // duplicate of item 0
  auto verdicts = SigChainClient::VerifyBatch(
      items, owner_.public_key(), codec_, crypto::HashScheme::kSha1,
      owner_.epoch());
  ASSERT_EQ(verdicts.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(verdicts[i].code(), Unbatched(items[i]).code()) << "item " << i;
    EXPECT_TRUE(verdicts[i].ok()) << "item " << i << ": "
                                  << verdicts[i].ToString();
  }
}

TEST_F(SigChainBatchTest, TamperedItemAttributedExactly) {
  Load(200);
  std::vector<SigChainClient::BatchItem> items;
  items.push_back(MakeItem(100, 600));
  items.push_back(MakeItem(500, 1500));
  items.push_back(MakeItem(800, 2000));
  // Tamper item 1's witness: its condensed check must fail — and ONLY its.
  items[1].witness[2].payload[0] ^= 0x5A;
  items[1].claimed = dbms::EvaluateAnswer(items[1].request, items[1].witness);
  auto verdicts = SigChainClient::VerifyBatch(
      items, owner_.public_key(), codec_, crypto::HashScheme::kSha1,
      owner_.epoch());
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_TRUE(verdicts[0].ok());
  EXPECT_EQ(verdicts[1].code(), StatusCode::kVerificationFailure);
  EXPECT_TRUE(verdicts[2].ok());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(verdicts[i].code(), Unbatched(items[i]).code()) << "item " << i;
  }
}

TEST_F(SigChainBatchTest, AnswerLieCaughtWithoutTouchingRsa) {
  Load(150);
  std::vector<SigChainClient::BatchItem> items;
  items.push_back(MakeItem(100, 900));
  items.push_back(MakeItem(100, 900));
  // Item 1 lies about the derived answer over a genuine witness.
  items[1].claimed.count += 1;
  auto verdicts = SigChainClient::VerifyBatch(
      items, owner_.public_key(), codec_, crypto::HashScheme::kSha1,
      owner_.epoch());
  EXPECT_TRUE(verdicts[0].ok());
  EXPECT_EQ(verdicts[1].code(), StatusCode::kVerificationFailure);
}

TEST_F(SigChainBatchTest, StaleAndForgedEpochTokensAttributed) {
  Load(150);
  std::vector<SigChainClient::BatchItem> items;
  items.push_back(MakeItem(100, 900));
  items.push_back(MakeItem(200, 700));
  items.push_back(MakeItem(300, 800));
  owner_.AdvanceEpoch();  // published epoch moves to 2
  sp_.SetEpoch(owner_.epoch(), owner_.epoch_signature());
  items.push_back(MakeItem(400, 1000));  // fresh at epoch 2
  // Item 1 forges the fresh epoch onto its old token: signature breaks.
  items[1].vo.epoch = owner_.epoch();
  // Item 2 keeps its genuine epoch-1 token: stale.
  auto verdicts = SigChainClient::VerifyBatch(
      items, owner_.public_key(), codec_, crypto::HashScheme::kSha1,
      owner_.epoch());
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_EQ(verdicts[0].code(), StatusCode::kStaleEpoch);
  EXPECT_EQ(verdicts[1].code(), StatusCode::kVerificationFailure);
  EXPECT_EQ(verdicts[2].code(), StatusCode::kStaleEpoch);
  EXPECT_TRUE(verdicts[3].ok()) << verdicts[3].ToString();
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(verdicts[i].code(), Unbatched(items[i]).code()) << "item " << i;
  }
}

TEST_F(SigChainBatchTest, EmptyBatchAndDeterministicSeeds) {
  Load(100);
  EXPECT_TRUE(SigChainClient::VerifyBatch({}, owner_.public_key(), codec_)
                  .empty());
  // Same items + same seed -> identical verdicts; different seeds draw
  // different combination exponents but must agree on every verdict.
  std::vector<SigChainClient::BatchItem> items;
  items.push_back(MakeItem(100, 500));
  items.push_back(MakeItem(300, 900));
  items[0].witness.pop_back();  // break completeness of item 0
  for (uint64_t seed : {1ull, 2ull, 0xFEEDull}) {
    auto verdicts = SigChainClient::VerifyBatch(
        items, owner_.public_key(), codec_, crypto::HashScheme::kSha1,
        owner_.epoch(), seed);
    EXPECT_EQ(verdicts[0].code(), StatusCode::kVerificationFailure)
        << "seed " << seed;
    EXPECT_TRUE(verdicts[1].ok()) << "seed " << seed;
  }
}

TEST(CondensedRsaTest, AggregateOfOneEqualsPlainVerify) {
  Rng rng(0xABCD);
  crypto::RsaPrivateKey key = crypto::RsaGenerateKey(&rng, 512);
  crypto::Digest d = crypto::ComputeDigest("chain", 5);
  crypto::RsaSignature sig = crypto::RsaSignDigest(key, d);
  crypto::RsaSignature condensed = CondenseSignatures({sig}, key.PublicKey());
  EXPECT_TRUE(VerifyCondensed(key.PublicKey(), {d}, condensed).ok());
}

TEST(CondensedRsaTest, AggregateOrderIndependent) {
  Rng rng(0xABCE);
  crypto::RsaPrivateKey key = crypto::RsaGenerateKey(&rng, 512);
  std::vector<crypto::Digest> digests;
  std::vector<crypto::RsaSignature> sigs;
  for (int i = 0; i < 5; ++i) {
    digests.push_back(crypto::ComputeDigest(&i, sizeof(i)));
    sigs.push_back(crypto::RsaSignDigest(key, digests.back()));
  }
  auto forward = CondenseSignatures(sigs, key.PublicKey());
  std::reverse(sigs.begin(), sigs.end());
  auto backward = CondenseSignatures(sigs, key.PublicKey());
  EXPECT_EQ(forward, backward);
  EXPECT_TRUE(VerifyCondensed(key.PublicKey(), digests, forward).ok());
}

TEST(CondensedRsaTest, MissingOrExtraSignatureFails) {
  Rng rng(0xABCF);
  crypto::RsaPrivateKey key = crypto::RsaGenerateKey(&rng, 512);
  std::vector<crypto::Digest> digests;
  std::vector<crypto::RsaSignature> sigs;
  for (int i = 0; i < 4; ++i) {
    digests.push_back(crypto::ComputeDigest(&i, sizeof(i)));
    sigs.push_back(crypto::RsaSignDigest(key, digests.back()));
  }
  // Aggregate over 3, claim 4.
  auto partial = CondenseSignatures(
      {sigs[0], sigs[1], sigs[2]}, key.PublicKey());
  EXPECT_FALSE(VerifyCondensed(key.PublicKey(), digests, partial).ok());
  // Aggregate over 4, claim 3.
  auto full = CondenseSignatures(sigs, key.PublicKey());
  digests.pop_back();
  EXPECT_FALSE(VerifyCondensed(key.PublicKey(), digests, full).ok());
}

// --- sharded composite verification ------------------------------------------

class ShardedSigChainTest : public ::testing::Test {
 protected:
  static constexpr storage::Key kFence = 1000;

  void SetUp() override {
    // Two chain shards split on the fence; the same rsa_seed gives both
    // shard owners one logical DO key, as in the sharded systems.
    SigChainOwner::Options owner_options;
    owner_options.record_size = kRecSize;
    owner_options.rsa_modulus_bits = 512;
    SigChainSp::Options sp_options;
    sp_options.record_size = kRecSize;
    sp_options.signature_bytes = 64;

    std::vector<std::vector<Record>> partitions(2);
    for (uint64_t id = 1; id <= 200; ++id) {
      Record record = codec_.MakeRecord(id, uint32_t(id * 10));
      partitions[record.key >= kFence ? 1 : 0].push_back(record);
    }
    for (size_t s = 0; s < 2; ++s) {
      owners_.push_back(std::make_unique<SigChainOwner>(owner_options));
      sps_.push_back(std::make_unique<SigChainSp>(sp_options));
      auto sigs = owners_[s]->SignDataset(partitions[s]);
      ASSERT_TRUE(sigs.ok());
      ASSERT_TRUE(sps_[s]
                      ->LoadDataset(partitions[s], sigs.value(),
                                    owners_[s]->public_key())
                      .ok());
      sps_[s]->SetEpoch(owners_[s]->epoch(),
                        owners_[s]->epoch_signature());
    }
  }

  // Executes [lo, hi] against both shards and stitches the slices the way
  // a sharded SP tier would.
  std::vector<ShardedChainSlice> QueryComposite(storage::Key lo,
                                                storage::Key hi) {
    std::vector<ShardedChainSlice> slices;
    auto parts = storage::PartitionKeyRange({kFence}, lo, hi);
    for (const auto& part : parts) {
      auto response = sps_[part.shard]->ExecuteRange(part.lo, part.hi);
      EXPECT_TRUE(response.ok());
      ShardedChainSlice slice;
      slice.shard = uint32_t(part.shard);
      slice.lo = part.lo;
      slice.hi = part.hi;
      slice.results = std::move(response.value().results);
      slice.vo = std::move(response.value().vo);
      slices.push_back(std::move(slice));
    }
    return slices;
  }

  std::vector<uint64_t> PublishedEpochs() const {
    return {owners_[0]->epoch(), owners_[1]->epoch()};
  }

  RecordCodec codec_{kRecSize};
  std::vector<std::unique_ptr<SigChainOwner>> owners_;
  std::vector<std::unique_ptr<SigChainSp>> sps_;
};

TEST_F(ShardedSigChainTest, CrossShardCompositeVerifies) {
  auto slices = QueryComposite(500, 1500);
  ASSERT_EQ(slices.size(), 2u);
  std::vector<std::pair<size_t, Status>> per_shard;
  Status st = VerifyComposite(500, 1500, slices, {kFence},
                              owners_[0]->public_key(), codec_,
                              crypto::HashScheme::kSha1, PublishedEpochs(),
                              &per_shard);
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(per_shard.size(), 2u);
  EXPECT_TRUE(per_shard[0].second.ok());
  EXPECT_TRUE(per_shard[1].second.ok());
}

TEST_F(ShardedSigChainTest, HiddenSliceFailsFenceCover) {
  auto slices = QueryComposite(500, 1500);
  slices.pop_back();  // pretend the upper shard had nothing
  Status st = VerifyComposite(500, 1500, slices, {kFence},
                              owners_[0]->public_key(), codec_,
                              crypto::HashScheme::kSha1, PublishedEpochs(),
                              nullptr);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(ShardedSigChainTest, LaggingShardIsSkewUniformLagIsStale) {
  auto slices = QueryComposite(500, 1500);
  // Shard 1's DO advances its epoch (an update the SP has not absorbed):
  // that slice is stale while shard 0 is fresh -> skew.
  owners_[1]->AdvanceEpoch();
  Status st = VerifyComposite(500, 1500, slices, {kFence},
                              owners_[0]->public_key(), codec_,
                              crypto::HashScheme::kSha1, PublishedEpochs(),
                              nullptr);
  EXPECT_EQ(st.code(), StatusCode::kShardEpochSkew);

  // Both shards lagging uniformly -> a replay, reported as staleness.
  owners_[0]->AdvanceEpoch();
  st = VerifyComposite(500, 1500, slices, {kFence},
                       owners_[0]->public_key(), codec_,
                       crypto::HashScheme::kSha1, PublishedEpochs(), nullptr);
  EXPECT_EQ(st.code(), StatusCode::kStaleEpoch);
}

TEST(ChainDigestTest, SentinelsDistinctAndStable) {
  EXPECT_NE(LowSentinel(), HighSentinel());
  crypto::Digest a = crypto::ComputeDigest("a", 1);
  crypto::Digest b = crypto::ComputeDigest("b", 1);
  crypto::Digest c = crypto::ComputeDigest("c", 1);
  EXPECT_EQ(ChainDigest(a, b, c), ChainDigest(a, b, c));
  EXPECT_NE(ChainDigest(a, b, c), ChainDigest(c, b, a));
  EXPECT_NE(ChainDigest(a, b, c), ChainDigest(a, c, b));
}

}  // namespace
}  // namespace sae::sigchain
