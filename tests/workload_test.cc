// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Tests for the dataset and query generators driving the experiments.

#include <gtest/gtest.h>

#include <set>

#include "workload/dataset.h"
#include "workload/queries.h"

namespace sae::workload {
namespace {

TEST(DatasetTest, CardinalityAndSortedness) {
  DatasetSpec spec;
  spec.cardinality = 5000;
  spec.record_size = 100;
  std::vector<storage::Record> records = GenerateDataset(spec);
  ASSERT_EQ(records.size(), 5000u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].key, records[i].key);
  }
}

TEST(DatasetTest, UniqueIds) {
  DatasetSpec spec;
  spec.cardinality = 5000;
  spec.record_size = 100;
  std::vector<storage::Record> records = GenerateDataset(spec);
  std::set<storage::RecordId> ids;
  for (const auto& r : records) ids.insert(r.id);
  EXPECT_EQ(ids.size(), records.size());
}

TEST(DatasetTest, KeysWithinDomain) {
  for (auto dist : {Distribution::kUniform, Distribution::kSkewed}) {
    DatasetSpec spec;
    spec.cardinality = 3000;
    spec.distribution = dist;
    spec.domain_max = 100000;
    spec.record_size = 64;
    for (const auto& r : GenerateDataset(spec)) {
      EXPECT_LE(r.key, 100000u);
    }
  }
}

TEST(DatasetTest, DeterministicForSeed) {
  DatasetSpec spec;
  spec.cardinality = 1000;
  spec.record_size = 64;
  spec.seed = 99;
  auto a = GenerateDataset(spec);
  auto b = GenerateDataset(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  spec.seed = 100;
  auto c = GenerateDataset(spec);
  bool all_equal = true;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == c[i])) {
      all_equal = false;
      break;
    }
  }
  EXPECT_FALSE(all_equal);
}

TEST(DatasetTest, SkewConcentratesKeys) {
  DatasetSpec spec;
  spec.cardinality = 50000;
  spec.distribution = Distribution::kSkewed;
  spec.record_size = 64;
  auto records = GenerateDataset(spec);
  size_t low = 0;
  for (const auto& r : records) {
    if (r.key <= spec.domain_max / 5) ++low;
  }
  // Standard Zipf(0.8) concentrates ~65% of the keys in the lowest 20% of
  // the domain (the paper quotes 77%; see the note in util_test.cc and
  // docs/BENCHMARKS.md).
  double fraction = double(low) / double(records.size());
  EXPECT_GT(fraction, 0.60);
  EXPECT_LT(fraction, 0.72);
}

TEST(DatasetTest, UniformSpreadsKeys) {
  DatasetSpec spec;
  spec.cardinality = 50000;
  spec.record_size = 64;
  auto records = GenerateDataset(spec);
  size_t low = 0;
  for (const auto& r : records) {
    if (r.key <= spec.domain_max / 5) ++low;
  }
  double fraction = double(low) / double(records.size());
  EXPECT_GT(fraction, 0.17);
  EXPECT_LT(fraction, 0.23);
}

TEST(DatasetTest, RecordSizeHonored) {
  DatasetSpec spec;
  spec.cardinality = 10;
  spec.record_size = 500;
  storage::RecordCodec codec(500);
  for (const auto& r : GenerateDataset(spec)) {
    EXPECT_EQ(codec.Serialize(r).size(), 500u);
  }
}

TEST(QueryTest, CountAndExtent) {
  QueryWorkloadSpec spec;
  spec.count = 100;
  spec.extent_fraction = 0.005;
  auto queries = GenerateQueries(spec);
  ASSERT_EQ(queries.size(), 100u);
  uint32_t extent = uint32_t((uint64_t(spec.domain_max) + 1) * 0.005);
  for (const auto& q : queries) {
    EXPECT_EQ(q.hi - q.lo, extent);
    EXPECT_LE(q.hi, spec.domain_max);
  }
}

TEST(QueryTest, Deterministic) {
  QueryWorkloadSpec spec;
  spec.seed = 5;
  auto a = GenerateQueries(spec);
  auto b = GenerateQueries(spec);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
}

TEST(QueryTest, PlacementCoversDomain) {
  QueryWorkloadSpec spec;
  spec.count = 2000;
  auto queries = GenerateQueries(spec);
  uint32_t min_lo = UINT32_MAX, max_lo = 0;
  for (const auto& q : queries) {
    min_lo = std::min(min_lo, q.lo);
    max_lo = std::max(max_lo, q.lo);
  }
  EXPECT_LT(min_lo, spec.domain_max / 10);
  EXPECT_GT(max_lo, spec.domain_max * 8ull / 10);
}

TEST(OperatorMixTest, DefaultsToScanOnlyPaperWorkload) {
  OperatorMixSpec spec;
  spec.count = 50;
  auto requests = GenerateOperatorMix(spec);
  ASSERT_EQ(requests.size(), 50u);
  uint32_t extent = uint32_t((uint64_t(spec.domain_max) + 1) * 0.005);
  for (const auto& q : requests) {
    EXPECT_EQ(q.op, dbms::QueryOp::kScan);
    EXPECT_EQ(q.hi - q.lo, extent);
    EXPECT_LE(q.hi, spec.domain_max);
  }
}

TEST(OperatorMixTest, WeightedMixRoughlyHonored) {
  OperatorMixSpec spec;
  spec.count = 4000;
  spec.mix = {{dbms::QueryOp::kScan, 3.0}, {dbms::QueryOp::kCount, 1.0}};
  auto requests = GenerateOperatorMix(spec);
  size_t scans = 0, counts = 0;
  for (const auto& q : requests) {
    if (q.op == dbms::QueryOp::kScan) ++scans;
    if (q.op == dbms::QueryOp::kCount) ++counts;
  }
  EXPECT_EQ(scans + counts, requests.size());
  double scan_fraction = double(scans) / double(requests.size());
  EXPECT_GT(scan_fraction, 0.70);
  EXPECT_LT(scan_fraction, 0.80);
}

TEST(OperatorMixTest, SelectivitySweepRoundRobinsExtents) {
  OperatorMixSpec spec;
  spec.count = 90;
  spec.extent_fractions = {0.001, 0.01, 0.1};
  auto requests = GenerateOperatorMix(spec);
  uint64_t domain = uint64_t(spec.domain_max) + 1;
  for (size_t i = 0; i < requests.size(); ++i) {
    uint32_t expect = uint32_t(
        double(domain) * spec.extent_fractions[i % 3]);
    EXPECT_EQ(requests[i].hi - requests[i].lo, expect) << i;
  }
}

TEST(OperatorMixTest, FullDomainExtentStaysInDomain) {
  // A selectivity of 1.0 (the documented maximum) must clamp to the
  // domain instead of wrapping the placement arithmetic.
  OperatorMixSpec spec;
  spec.count = 30;
  spec.extent_fractions = {1.0};
  spec.mix = {{dbms::QueryOp::kScan, 1.0}, {dbms::QueryOp::kCount, 1.0}};
  for (const auto& q : GenerateOperatorMix(spec)) {
    EXPECT_EQ(q.lo, 0u);
    EXPECT_EQ(q.hi, spec.domain_max);
  }
  // Same under Zipf placement (the clamp path differs).
  spec.zipf_theta = 0.8;
  for (const auto& q : GenerateOperatorMix(spec)) {
    EXPECT_LE(q.lo, q.hi);
    EXPECT_LE(q.hi, spec.domain_max);
  }
}

TEST(OperatorMixTest, PointQueriesCollapseToSingleKey) {
  OperatorMixSpec spec;
  spec.count = 40;
  spec.mix = {{dbms::QueryOp::kPoint, 1.0}};
  for (const auto& q : GenerateOperatorMix(spec)) {
    EXPECT_EQ(q.op, dbms::QueryOp::kPoint);
    EXPECT_EQ(q.lo, q.hi);
  }
}

TEST(OperatorMixTest, TopKCarriesTheLimit) {
  OperatorMixSpec spec;
  spec.count = 20;
  spec.mix = {{dbms::QueryOp::kTopK, 1.0}};
  spec.topk_limit = 25;
  for (const auto& q : GenerateOperatorMix(spec)) {
    EXPECT_EQ(q.op, dbms::QueryOp::kTopK);
    EXPECT_EQ(q.limit, 25u);
  }
}

TEST(OperatorMixTest, ZipfPlacementSkewsTowardLowDomain) {
  OperatorMixSpec uniform;
  uniform.count = 4000;
  auto uniform_reqs = GenerateOperatorMix(uniform);

  OperatorMixSpec skewed = uniform;
  skewed.zipf_theta = 0.8;
  auto skewed_reqs = GenerateOperatorMix(skewed);

  auto low_fraction = [&](const std::vector<dbms::QueryRequest>& reqs,
                          uint32_t domain_max) {
    size_t low = 0;
    for (const auto& q : reqs) {
      if (q.lo <= domain_max / 5) ++low;
    }
    return double(low) / double(reqs.size());
  };
  EXPECT_LT(low_fraction(uniform_reqs, uniform.domain_max), 0.25);
  EXPECT_GT(low_fraction(skewed_reqs, skewed.domain_max), 0.55);
}

TEST(OperatorMixTest, DeterministicForSeed) {
  OperatorMixSpec spec;
  spec.count = 200;
  spec.mix = {{dbms::QueryOp::kScan, 1.0}, {dbms::QueryOp::kSum, 1.0},
              {dbms::QueryOp::kTopK, 0.5}};
  spec.zipf_theta = 0.8;
  auto a = GenerateOperatorMix(spec);
  auto b = GenerateOperatorMix(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  spec.seed = 8;
  auto c = GenerateOperatorMix(spec);
  bool all_equal = true;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != c[i]) {
      all_equal = false;
      break;
    }
  }
  EXPECT_FALSE(all_equal);
}

}  // namespace
}  // namespace sae::workload
