// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Tests for the dataset and query generators driving the experiments.

#include <gtest/gtest.h>

#include <set>

#include "workload/dataset.h"
#include "workload/queries.h"

namespace sae::workload {
namespace {

TEST(DatasetTest, CardinalityAndSortedness) {
  DatasetSpec spec;
  spec.cardinality = 5000;
  spec.record_size = 100;
  std::vector<storage::Record> records = GenerateDataset(spec);
  ASSERT_EQ(records.size(), 5000u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].key, records[i].key);
  }
}

TEST(DatasetTest, UniqueIds) {
  DatasetSpec spec;
  spec.cardinality = 5000;
  spec.record_size = 100;
  std::vector<storage::Record> records = GenerateDataset(spec);
  std::set<storage::RecordId> ids;
  for (const auto& r : records) ids.insert(r.id);
  EXPECT_EQ(ids.size(), records.size());
}

TEST(DatasetTest, KeysWithinDomain) {
  for (auto dist : {Distribution::kUniform, Distribution::kSkewed}) {
    DatasetSpec spec;
    spec.cardinality = 3000;
    spec.distribution = dist;
    spec.domain_max = 100000;
    spec.record_size = 64;
    for (const auto& r : GenerateDataset(spec)) {
      EXPECT_LE(r.key, 100000u);
    }
  }
}

TEST(DatasetTest, DeterministicForSeed) {
  DatasetSpec spec;
  spec.cardinality = 1000;
  spec.record_size = 64;
  spec.seed = 99;
  auto a = GenerateDataset(spec);
  auto b = GenerateDataset(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  spec.seed = 100;
  auto c = GenerateDataset(spec);
  bool all_equal = true;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == c[i])) {
      all_equal = false;
      break;
    }
  }
  EXPECT_FALSE(all_equal);
}

TEST(DatasetTest, SkewConcentratesKeys) {
  DatasetSpec spec;
  spec.cardinality = 50000;
  spec.distribution = Distribution::kSkewed;
  spec.record_size = 64;
  auto records = GenerateDataset(spec);
  size_t low = 0;
  for (const auto& r : records) {
    if (r.key <= spec.domain_max / 5) ++low;
  }
  // Standard Zipf(0.8) concentrates ~65% of the keys in the lowest 20% of
  // the domain (the paper quotes 77%; see the note in util_test.cc and
  // docs/BENCHMARKS.md).
  double fraction = double(low) / double(records.size());
  EXPECT_GT(fraction, 0.60);
  EXPECT_LT(fraction, 0.72);
}

TEST(DatasetTest, UniformSpreadsKeys) {
  DatasetSpec spec;
  spec.cardinality = 50000;
  spec.record_size = 64;
  auto records = GenerateDataset(spec);
  size_t low = 0;
  for (const auto& r : records) {
    if (r.key <= spec.domain_max / 5) ++low;
  }
  double fraction = double(low) / double(records.size());
  EXPECT_GT(fraction, 0.17);
  EXPECT_LT(fraction, 0.23);
}

TEST(DatasetTest, RecordSizeHonored) {
  DatasetSpec spec;
  spec.cardinality = 10;
  spec.record_size = 500;
  storage::RecordCodec codec(500);
  for (const auto& r : GenerateDataset(spec)) {
    EXPECT_EQ(codec.Serialize(r).size(), 500u);
  }
}

TEST(QueryTest, CountAndExtent) {
  QueryWorkloadSpec spec;
  spec.count = 100;
  spec.extent_fraction = 0.005;
  auto queries = GenerateQueries(spec);
  ASSERT_EQ(queries.size(), 100u);
  uint32_t extent = uint32_t((uint64_t(spec.domain_max) + 1) * 0.005);
  for (const auto& q : queries) {
    EXPECT_EQ(q.hi - q.lo, extent);
    EXPECT_LE(q.hi, spec.domain_max);
  }
}

TEST(QueryTest, Deterministic) {
  QueryWorkloadSpec spec;
  spec.seed = 5;
  auto a = GenerateQueries(spec);
  auto b = GenerateQueries(spec);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
}

TEST(QueryTest, PlacementCoversDomain) {
  QueryWorkloadSpec spec;
  spec.count = 2000;
  auto queries = GenerateQueries(spec);
  uint32_t min_lo = UINT32_MAX, max_lo = 0;
  for (const auto& q : queries) {
    min_lo = std::min(min_lo, q.lo);
    max_lo = std::max(max_lo, q.lo);
  }
  EXPECT_LT(min_lo, spec.domain_max / 10);
  EXPECT_GT(max_lo, spec.domain_max * 8ull / 10);
}

}  // namespace
}  // namespace sae::workload
