// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit tests for src/crypto: FIPS 180 test vectors for SHA-1/SHA-256, the
// digest XOR algebra, BigInt arithmetic (cross-checked against known values
// and a uint64 reference model) and RSA sign/verify.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "crypto/backend.h"
#include "crypto/bigint.h"
#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/hex.h"
#include "util/random.h"

namespace sae::crypto {
namespace {

std::string Sha1Hex(const std::string& msg) {
  auto d = Sha1::Hash(msg.data(), msg.size());
  return HexEncode(d.data(), d.size());
}

std::string Sha256Hex(const std::string& msg) {
  auto d = Sha256::Hash(msg.data(), msg.size());
  return HexEncode(d.data(), d.size());
}

// --- SHA-1 (FIPS 180 / RFC 3174 vectors) ---------------------------------------

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(Sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(Sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk.data(), chunk.size());
  uint8_t out[Sha1::kDigestSize];
  hasher.Finish(out);
  EXPECT_EQ(HexEncode(out, sizeof(out)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and at odd "
      "block boundaries to stress the buffering logic.";
  for (size_t cut = 0; cut <= msg.size(); cut += 7) {
    Sha1 hasher;
    hasher.Update(msg.data(), cut);
    hasher.Update(msg.data() + cut, msg.size() - cut);
    uint8_t out[Sha1::kDigestSize];
    hasher.Finish(out);
    auto ref = Sha1::Hash(msg.data(), msg.size());
    EXPECT_EQ(HexEncode(out, 20), HexEncode(ref.data(), 20)) << "cut " << cut;
  }
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 hasher;
  hasher.Update("junk", 4);
  uint8_t out[Sha1::kDigestSize];
  hasher.Finish(out);
  hasher.Reset();
  hasher.Update("abc", 3);
  hasher.Finish(out);
  EXPECT_EQ(HexEncode(out, 20), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

// Exactly one block minus padding edge: 55, 56, 57, 63, 64, 65 bytes.
TEST(Sha1Test, PaddingBoundaries) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    std::string msg(len, 'x');
    // Compare against incremental 1-byte feeding, which exercises all paths.
    Sha1 hasher;
    for (char c : msg) hasher.Update(&c, 1);
    uint8_t a[Sha1::kDigestSize];
    hasher.Finish(a);
    auto b = Sha1::Hash(msg.data(), msg.size());
    EXPECT_EQ(HexEncode(a, 20), HexEncode(b.data(), 20)) << "len " << len;
  }
}

// --- SHA-256 (FIPS 180 vectors) ------------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(
      Sha256Hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(
      Sha256Hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk.data(), chunk.size());
  uint8_t out[Sha256::kDigestSize];
  hasher.Finish(out);
  EXPECT_EQ(
      HexEncode(out, sizeof(out)),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// --- Digest algebra --------------------------------------------------------------

TEST(DigestTest, ZeroIsIdentity) {
  Digest d = ComputeDigest("record", 6);
  EXPECT_EQ(d ^ Digest::Zero(), d);
  EXPECT_TRUE(Digest::Zero().IsZero());
  EXPECT_FALSE(d.IsZero());
}

TEST(DigestTest, SelfInverse) {
  Digest d = ComputeDigest("record", 6);
  EXPECT_TRUE((d ^ d).IsZero());
}

TEST(DigestTest, Commutative) {
  Digest a = ComputeDigest("a", 1);
  Digest b = ComputeDigest("b", 1);
  Digest c = ComputeDigest("c", 1);
  EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
  EXPECT_EQ(a ^ b, b ^ a);
}

TEST(DigestTest, SchemesDiffer) {
  Digest sha1 = ComputeDigest("x", 1, HashScheme::kSha1);
  Digest sha256 = ComputeDigest("x", 1, HashScheme::kSha256Trunc);
  EXPECT_NE(sha1, sha256);
}

TEST(DigestTest, Sha256TruncMatchesPrefix) {
  auto full = Sha256::Hash("payload", 7);
  Digest trunc = ComputeDigest("payload", 7, HashScheme::kSha256Trunc);
  EXPECT_EQ(HexEncode(full.data(), 20), trunc.ToHex());
}

TEST(DigestTest, CombineMatchesManualConcat) {
  Digest a = ComputeDigest("a", 1);
  Digest b = ComputeDigest("b", 1);
  Digest combined = CombineDigests(&a, 1);
  // H(a.bytes) must equal hashing the 20 raw bytes directly.
  EXPECT_EQ(combined,
            ComputeDigest(a.bytes.data(), a.bytes.size()));
  std::vector<uint8_t> concat(a.bytes.begin(), a.bytes.end());
  concat.insert(concat.end(), b.bytes.begin(), b.bytes.end());
  Digest pair[] = {a, b};
  EXPECT_EQ(CombineDigests(pair, 2),
            ComputeDigest(concat.data(), concat.size()));
}

// --- BigInt ----------------------------------------------------------------------

TEST(BigIntTest, ConstructionAndHex) {
  EXPECT_EQ(BigInt(0).ToHex(), "0");
  EXPECT_EQ(BigInt(255).ToHex(), "ff");
  EXPECT_EQ(BigInt(0x123456789abcdefULL).ToHex(), "123456789abcdef");
  EXPECT_TRUE(BigInt(0).IsZero());
  EXPECT_FALSE(BigInt(1).IsZero());
}

TEST(BigIntTest, FromHexRoundTrip) {
  std::string hex = "deadbeefcafebabe0123456789abcdef";
  EXPECT_EQ(BigInt::FromHex(hex).ToHex(), hex);
}

TEST(BigIntTest, BytesRoundTrip) {
  std::vector<uint8_t> bytes{0x01, 0x02, 0x03, 0x04, 0x05};
  BigInt v = BigInt::FromBytes(bytes.data(), bytes.size());
  EXPECT_EQ(v.ToHex(), "102030405");
  EXPECT_EQ(v.ToBytes(5), bytes);
  // Leading zeros are absorbed.
  std::vector<uint8_t> padded{0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05};
  EXPECT_EQ(BigInt::FromBytes(padded.data(), padded.size()), v);
}

TEST(BigIntTest, CompareAndOrdering) {
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(BigInt::FromHex("100000000"), BigInt(0xFFFFFFFFull));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigIntTest, AddSubAgainstUint64) {
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next() >> 1, b = rng.Next() >> 1;
    if (a < b) std::swap(a, b);
    EXPECT_EQ(BigInt::Add(BigInt(a), BigInt(b)), BigInt(a + b));
    EXPECT_EQ(BigInt::Sub(BigInt(a), BigInt(b)), BigInt(a - b));
  }
}

TEST(BigIntTest, MulAgainstUint64) {
  Rng rng(22);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next() >> 32, b = rng.Next() >> 32;
    EXPECT_EQ(BigInt::Mul(BigInt(a), BigInt(b)), BigInt(a * b));
  }
}

TEST(BigIntTest, MulWideKnownValue) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  BigInt a(0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(BigInt::Mul(a, a).ToHex(),
            "fffffffffffffffe0000000000000001");
}

TEST(BigIntTest, DivModAgainstUint64) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next() % 1000003 + 1;
    BigInt rem;
    BigInt q = BigInt::DivMod(BigInt(a), BigInt(b), &rem);
    EXPECT_EQ(q, BigInt(a / b));
    EXPECT_EQ(rem, BigInt(a % b));
  }
}

TEST(BigIntTest, DivModWideRandomReconstruction) {
  Rng rng(24);
  for (int i = 0; i < 300; ++i) {
    BigInt a = BigInt::Random(&rng, 256, false);
    BigInt b = BigInt::Random(&rng, 128, true);
    BigInt rem;
    BigInt q = BigInt::DivMod(a, b, &rem);
    EXPECT_LT(BigInt::Compare(rem, b), 0);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), rem), a);
  }
}

TEST(BigIntTest, ShiftRoundTrip) {
  BigInt v = BigInt::FromHex("123456789abcdef0fedcba9876543210");
  for (size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(BigInt::ShiftRight(BigInt::ShiftLeft(v, s), s), v) << s;
  }
}

TEST(BigIntTest, BitLengthAndBit) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(0x80000000ull).BitLength(), 32u);
  BigInt v(0b1011);
  EXPECT_TRUE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(100));
}

TEST(BigIntTest, ModPowKnownValues) {
  // 3^7 mod 1000 = 187 ; 2^10 mod 17 = 4
  EXPECT_EQ(BigInt::ModPow(BigInt(3), BigInt(7), BigInt(1000)), BigInt(187));
  EXPECT_EQ(BigInt::ModPow(BigInt(2), BigInt(10), BigInt(17)), BigInt(4));
}

TEST(BigIntTest, ModPowFermat) {
  // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
  BigInt p(1000000007ull);
  Rng rng(25);
  for (int i = 0; i < 50; ++i) {
    BigInt a(rng.Next() % 1000000006ull + 1);
    EXPECT_EQ(BigInt::ModPow(a, BigInt(1000000006ull), p), BigInt(1));
  }
}

TEST(BigIntTest, GcdKnownValues) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
}

TEST(BigIntTest, ModInverse) {
  Rng rng(26);
  BigInt m(1000000007ull);  // prime modulus -> every nonzero a invertible
  for (int i = 0; i < 200; ++i) {
    BigInt a(rng.Next() % 1000000006ull + 1);
    BigInt inv;
    ASSERT_TRUE(BigInt::ModInverse(a, m, &inv));
    EXPECT_EQ(BigInt::Mod(BigInt::Mul(a, inv), m), BigInt(1));
  }
}

TEST(BigIntTest, ModInverseFailsWhenNotCoprime) {
  BigInt inv;
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9), &inv));
}

TEST(BigIntTest, PrimalityKnownValues) {
  Rng rng(27);
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(2), &rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(3), &rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(1000000007ull), &rng));
  EXPECT_TRUE(
      BigInt::IsProbablePrime(BigInt(0xFFFFFFFFFFFFFFC5ull), &rng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(1), &rng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(561), &rng));    // Carmichael
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(41041), &rng));  // Carmichael
  EXPECT_FALSE(BigInt::IsProbablePrime(
      BigInt::Mul(BigInt(1000003), BigInt(1000033)), &rng));
}

TEST(BigIntTest, GeneratePrimeHasExactBits) {
  Rng rng(28);
  for (size_t bits : {64u, 96u}) {
    BigInt p = BigInt::GeneratePrime(&rng, bits);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(BigInt::IsProbablePrime(p, &rng));
  }
}

// --- RSA ------------------------------------------------------------------------

class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xC0FFEE);
    key_ = new RsaPrivateKey(RsaGenerateKey(&rng, 512));
  }
  static void TearDownTestSuite() {
    delete key_;
    key_ = nullptr;
  }
  static RsaPrivateKey* key_;
};

RsaPrivateKey* RsaTest::key_ = nullptr;

TEST_F(RsaTest, SignVerifyRoundTrip) {
  Digest d = ComputeDigest("mb-tree root", 12);
  RsaSignature sig = RsaSignDigest(*key_, d);
  EXPECT_EQ(sig.size(), key_->PublicKey().ModulusBytes());
  EXPECT_TRUE(RsaVerifyDigest(key_->PublicKey(), d, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongDigest) {
  Digest d = ComputeDigest("root", 4);
  RsaSignature sig = RsaSignDigest(*key_, d);
  Digest other = ComputeDigest("soot", 4);
  Status st = RsaVerifyDigest(key_->PublicKey(), other, sig);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  Digest d = ComputeDigest("root", 4);
  RsaSignature sig = RsaSignDigest(*key_, d);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(RsaVerifyDigest(key_->PublicKey(), d, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongLength) {
  Digest d = ComputeDigest("root", 4);
  RsaSignature sig = RsaSignDigest(*key_, d);
  sig.pop_back();
  EXPECT_FALSE(RsaVerifyDigest(key_->PublicKey(), d, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsOutOfRangeSignature) {
  Digest d = ComputeDigest("root", 4);
  size_t k = key_->PublicKey().ModulusBytes();
  RsaSignature huge(k, 0xFF);  // >= n
  EXPECT_FALSE(RsaVerifyDigest(key_->PublicKey(), d, huge).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  Rng rng(0xDECAF);
  RsaPrivateKey other = RsaGenerateKey(&rng, 512);
  Digest d = ComputeDigest("root", 4);
  RsaSignature sig = RsaSignDigest(*key_, d);
  EXPECT_FALSE(RsaVerifyDigest(other.PublicKey(), d, sig).ok());
}

TEST_F(RsaTest, DeterministicSignature) {
  Digest d = ComputeDigest("root", 4);
  EXPECT_EQ(RsaSignDigest(*key_, d), RsaSignDigest(*key_, d));
}

TEST(RsaKeyGenTest, DeterministicForSeed) {
  Rng a(42), b(42);
  RsaPrivateKey ka = RsaGenerateKey(&a, 512);
  RsaPrivateKey kb = RsaGenerateKey(&b, 512);
  EXPECT_EQ(ka.n, kb.n);
  EXPECT_EQ(ka.d, kb.d);
}

TEST(RsaKeyGenTest, ModulusHasRequestedBits) {
  Rng rng(43);
  RsaPrivateKey key = RsaGenerateKey(&rng, 768);
  EXPECT_EQ(key.n.BitLength(), 768u);
}

// --- per-backend known-answer tests --------------------------------------------
//
// The FIPS vectors above pin the scalar Sha1/Sha256 classes. These pin the
// dispatched path (Backend::HashOne / HashMany) under BOTH dispatch modes,
// so a CPU where SHA-NI or AVX2 kernels are active proves them against
// NIST answers, and a scalar-only CPU still runs the same assertions.

class BackendDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Backend::Instance().force_scalar(); }
  void TearDown() override { Backend::Instance().set_force_scalar(saved_); }

  // Runs `fn` once with accelerated dispatch and once forced scalar.
  template <typename Fn>
  void EachBackend(Fn fn) {
    Backend::Instance().set_force_scalar(false);
    fn(Backend::Instance().hash_kernel());
    Backend::Instance().set_force_scalar(true);
    fn("forced-scalar");
  }

 private:
  bool saved_ = false;
};

TEST_F(BackendDispatchTest, Sha1NistVectors) {
  // FIPS 180 / RFC 3174 answers through the dispatched one-shot path.
  const struct {
    const char* msg;
    const char* hex;
  } kVectors[] = {
      {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
      {"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
  };
  EachBackend([&](const char* kernel) {
    for (const auto& v : kVectors) {
      Digest d = Backend::Instance().HashOne(HashScheme::kSha1, v.msg,
                                             std::strlen(v.msg));
      EXPECT_EQ(HexEncode(d.bytes.data(), d.bytes.size()), v.hex)
          << "kernel=" << kernel << " msg=\"" << v.msg << "\"";
    }
  });
}

TEST_F(BackendDispatchTest, Sha256NistVectors) {
  // SHA-256 truncated to the 20-byte Digest: the first 20 bytes of the
  // NIST answers.
  const struct {
    const char* msg;
    const char* hex40;  // first 40 hex chars of the full SHA-256 digest
  } kVectors[] = {
      {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4"},
      {"abc", "ba7816bf8f01cfea414140de5dae2223b00361a3"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce459"},
  };
  EachBackend([&](const char* kernel) {
    for (const auto& v : kVectors) {
      Digest d = Backend::Instance().HashOne(HashScheme::kSha256Trunc, v.msg,
                                             std::strlen(v.msg));
      EXPECT_EQ(HexEncode(d.bytes.data(), d.bytes.size()), v.hex40)
          << "kernel=" << kernel << " msg=\"" << v.msg << "\"";
    }
  });
}

TEST_F(BackendDispatchTest, MillionAsThroughBatchedPath) {
  // The classic 1,000,000 x 'a' vector, shaped as a batch so the
  // multi-buffer path sees long equal-length inputs alongside it.
  std::string million(1'000'000, 'a');
  std::string empty;
  ByteSpan spans[3] = {{million.data(), million.size()},
                       {empty.data(), 0},
                       {million.data(), million.size()}};
  EachBackend([&](const char* kernel) {
    Digest out[3];
    Backend::Instance().HashMany(HashScheme::kSha1, spans, 3, out);
    EXPECT_EQ(HexEncode(out[0].bytes.data(), out[0].bytes.size()),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f")
        << "kernel=" << kernel;
    EXPECT_EQ(HexEncode(out[1].bytes.data(), out[1].bytes.size()),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709")
        << "kernel=" << kernel;
    EXPECT_EQ(HexEncode(out[0].bytes.data(), out[0].bytes.size()),
              HexEncode(out[2].bytes.data(), out[2].bytes.size()));
  });
}

// Fixed RSA-1024 PKCS#1 v1.5 vector. The key and the expected signature
// were derived outside this codebase (deterministic Miller-Rabin primes,
// pow(m, d, n) in arbitrary-precision integer arithmetic), so these bytes
// are external truth for the whole sign pipeline — EMSA-PKCS1 framing,
// CRT split, Montgomery ladder — under both dispatch modes.
TEST_F(BackendDispatchTest, FixedPkcs1Vector) {
  RsaPrivateKey key;
  key.n = BigInt::FromHex(
      "ba5faaae9c1b2ea619ba5a91522fb4209f8c80a711afb10ed392259e9d97cf163c4f"
      "c988e590e445135f038261ea177a14d1ed7443bbac0902d4e2ae76e0835c5370b3a0"
      "8a1d6a127f1d2202ba755f52f021f3a2f0f2a50aefe3051fa7b5a13edfe1ba610297"
      "2a17612320feec95b8195699c28df9ecd68fae74a3d869989fe5");
  key.e = BigInt(65537);
  key.d = BigInt::FromHex(
      "2b5bfc6a9918ddd678dfd9183c05ab2377db0947551f09d348379516fcd507b1c5a0"
      "4e63d1fcce8e9f7e1863ea01bb2a84d37e29f164251707989d903749ee6553b6a1e6"
      "25ee9a069a3a7016ad5a19130774cd661a902c3ffcee8c9a84a83890c60dfeb77120"
      "5a52c4ebffad6366e3e424705d94ebcf50b7d8bc638ed06372e1");
  key.p = BigInt::FromHex(
      "e1efea2842c30ac1ce0ab7ca6d0b3115075dee0718d48b7cdf676b22066d226c2c0c"
      "dfc742f63e606a9f2552fdd404851d96f448067a4146ec4e753a5f6180d9");
  key.q = BigInt::FromHex(
      "d32c1a91f4296dfc84a944fa347397bfce573d9f565324a68a9b0a6214d2233b9046"
      "12f0ed041378c8e6880c41b20c5089313f3fe6617fa7de0007a4d740afed");
  key.dp = BigInt::FromHex(
      "b35833f11d7da12e5215a3eaa5403b07cc3f3d5098df2e9242ebded8b56d2fe3d9db"
      "a64e8fd2d394c94de6dcc7ebe262a028516452effc9d05bb09c6fa2b7591");
  key.dq = BigInt::FromHex(
      "0a60ef895edbae692bc7f9f8e61d0c474407eba26a26b9f5697887411ccedb267147"
      "d06480f1a3575b60612d6109342bbd226b7e637f453be5e0507fdc88745d");
  key.qinv = BigInt::FromHex(
      "5867f46d6d11e8edbc91bfaa2ce6a849af9c88cfa154705082269c961360af212019"
      "442420eb194982287d7ecec39f6e93c2c77cd806f702a49951892d64b52a");
  ASSERT_TRUE(key.HasCrt());

  const std::string msg = "saedb fixed vector";
  const char* kExpectedSig =
      "33ea00590fe93aaae4c100304ce9dc9679b4a0e73fdaf717444848a41f7e8b64b792"
      "1c6e080cf83d63777a58ddf37b5a3f166a78aa581d196bf2e496c74a0b9e8996ff1a"
      "509d7b6a43e84ab37876f51b155229d2d9b009d4e2bcd3d5de81a5c218c6ff95e98a"
      "b4d6006b480626b4651eb076678c83b35a630f6bce26394b27d4";

  EachBackend([&](const char* kernel) {
    Digest digest = ComputeDigest(msg.data(), msg.size());
    EXPECT_EQ(HexEncode(digest.bytes.data(), digest.bytes.size()),
              "646cfe803374fa4721ad444237b3e9cdc3f93410")
        << "kernel=" << kernel;
    RsaSignature sig = RsaSignDigest(key, digest);
    EXPECT_EQ(HexEncode(sig.data(), sig.size()), kExpectedSig)
        << "kernel=" << kernel;
    EXPECT_TRUE(RsaVerifyDigest(key.PublicKey(), digest, sig).ok())
        << "kernel=" << kernel;
  });
}

}  // namespace
}  // namespace sae::crypto
