// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit tests for src/crypto: FIPS 180 test vectors for SHA-1/SHA-256, the
// digest XOR algebra, BigInt arithmetic (cross-checked against known values
// and a uint64 reference model) and RSA sign/verify.

#include <gtest/gtest.h>

#include <string>

#include "crypto/bigint.h"
#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/hex.h"
#include "util/random.h"

namespace sae::crypto {
namespace {

std::string Sha1Hex(const std::string& msg) {
  auto d = Sha1::Hash(msg.data(), msg.size());
  return HexEncode(d.data(), d.size());
}

std::string Sha256Hex(const std::string& msg) {
  auto d = Sha256::Hash(msg.data(), msg.size());
  return HexEncode(d.data(), d.size());
}

// --- SHA-1 (FIPS 180 / RFC 3174 vectors) ---------------------------------------

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(Sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(Sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk.data(), chunk.size());
  uint8_t out[Sha1::kDigestSize];
  hasher.Finish(out);
  EXPECT_EQ(HexEncode(out, sizeof(out)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and at odd "
      "block boundaries to stress the buffering logic.";
  for (size_t cut = 0; cut <= msg.size(); cut += 7) {
    Sha1 hasher;
    hasher.Update(msg.data(), cut);
    hasher.Update(msg.data() + cut, msg.size() - cut);
    uint8_t out[Sha1::kDigestSize];
    hasher.Finish(out);
    auto ref = Sha1::Hash(msg.data(), msg.size());
    EXPECT_EQ(HexEncode(out, 20), HexEncode(ref.data(), 20)) << "cut " << cut;
  }
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 hasher;
  hasher.Update("junk", 4);
  uint8_t out[Sha1::kDigestSize];
  hasher.Finish(out);
  hasher.Reset();
  hasher.Update("abc", 3);
  hasher.Finish(out);
  EXPECT_EQ(HexEncode(out, 20), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

// Exactly one block minus padding edge: 55, 56, 57, 63, 64, 65 bytes.
TEST(Sha1Test, PaddingBoundaries) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    std::string msg(len, 'x');
    // Compare against incremental 1-byte feeding, which exercises all paths.
    Sha1 hasher;
    for (char c : msg) hasher.Update(&c, 1);
    uint8_t a[Sha1::kDigestSize];
    hasher.Finish(a);
    auto b = Sha1::Hash(msg.data(), msg.size());
    EXPECT_EQ(HexEncode(a, 20), HexEncode(b.data(), 20)) << "len " << len;
  }
}

// --- SHA-256 (FIPS 180 vectors) ------------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(
      Sha256Hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(
      Sha256Hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk.data(), chunk.size());
  uint8_t out[Sha256::kDigestSize];
  hasher.Finish(out);
  EXPECT_EQ(
      HexEncode(out, sizeof(out)),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// --- Digest algebra --------------------------------------------------------------

TEST(DigestTest, ZeroIsIdentity) {
  Digest d = ComputeDigest("record", 6);
  EXPECT_EQ(d ^ Digest::Zero(), d);
  EXPECT_TRUE(Digest::Zero().IsZero());
  EXPECT_FALSE(d.IsZero());
}

TEST(DigestTest, SelfInverse) {
  Digest d = ComputeDigest("record", 6);
  EXPECT_TRUE((d ^ d).IsZero());
}

TEST(DigestTest, Commutative) {
  Digest a = ComputeDigest("a", 1);
  Digest b = ComputeDigest("b", 1);
  Digest c = ComputeDigest("c", 1);
  EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
  EXPECT_EQ(a ^ b, b ^ a);
}

TEST(DigestTest, SchemesDiffer) {
  Digest sha1 = ComputeDigest("x", 1, HashScheme::kSha1);
  Digest sha256 = ComputeDigest("x", 1, HashScheme::kSha256Trunc);
  EXPECT_NE(sha1, sha256);
}

TEST(DigestTest, Sha256TruncMatchesPrefix) {
  auto full = Sha256::Hash("payload", 7);
  Digest trunc = ComputeDigest("payload", 7, HashScheme::kSha256Trunc);
  EXPECT_EQ(HexEncode(full.data(), 20), trunc.ToHex());
}

TEST(DigestTest, CombineMatchesManualConcat) {
  Digest a = ComputeDigest("a", 1);
  Digest b = ComputeDigest("b", 1);
  Digest combined = CombineDigests(&a, 1);
  // H(a.bytes) must equal hashing the 20 raw bytes directly.
  EXPECT_EQ(combined,
            ComputeDigest(a.bytes.data(), a.bytes.size()));
  std::vector<uint8_t> concat(a.bytes.begin(), a.bytes.end());
  concat.insert(concat.end(), b.bytes.begin(), b.bytes.end());
  Digest pair[] = {a, b};
  EXPECT_EQ(CombineDigests(pair, 2),
            ComputeDigest(concat.data(), concat.size()));
}

// --- BigInt ----------------------------------------------------------------------

TEST(BigIntTest, ConstructionAndHex) {
  EXPECT_EQ(BigInt(0).ToHex(), "0");
  EXPECT_EQ(BigInt(255).ToHex(), "ff");
  EXPECT_EQ(BigInt(0x123456789abcdefULL).ToHex(), "123456789abcdef");
  EXPECT_TRUE(BigInt(0).IsZero());
  EXPECT_FALSE(BigInt(1).IsZero());
}

TEST(BigIntTest, FromHexRoundTrip) {
  std::string hex = "deadbeefcafebabe0123456789abcdef";
  EXPECT_EQ(BigInt::FromHex(hex).ToHex(), hex);
}

TEST(BigIntTest, BytesRoundTrip) {
  std::vector<uint8_t> bytes{0x01, 0x02, 0x03, 0x04, 0x05};
  BigInt v = BigInt::FromBytes(bytes.data(), bytes.size());
  EXPECT_EQ(v.ToHex(), "102030405");
  EXPECT_EQ(v.ToBytes(5), bytes);
  // Leading zeros are absorbed.
  std::vector<uint8_t> padded{0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05};
  EXPECT_EQ(BigInt::FromBytes(padded.data(), padded.size()), v);
}

TEST(BigIntTest, CompareAndOrdering) {
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(BigInt::FromHex("100000000"), BigInt(0xFFFFFFFFull));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigIntTest, AddSubAgainstUint64) {
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next() >> 1, b = rng.Next() >> 1;
    if (a < b) std::swap(a, b);
    EXPECT_EQ(BigInt::Add(BigInt(a), BigInt(b)), BigInt(a + b));
    EXPECT_EQ(BigInt::Sub(BigInt(a), BigInt(b)), BigInt(a - b));
  }
}

TEST(BigIntTest, MulAgainstUint64) {
  Rng rng(22);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next() >> 32, b = rng.Next() >> 32;
    EXPECT_EQ(BigInt::Mul(BigInt(a), BigInt(b)), BigInt(a * b));
  }
}

TEST(BigIntTest, MulWideKnownValue) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  BigInt a(0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(BigInt::Mul(a, a).ToHex(),
            "fffffffffffffffe0000000000000001");
}

TEST(BigIntTest, DivModAgainstUint64) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng.Next();
    uint64_t b = rng.Next() % 1000003 + 1;
    BigInt rem;
    BigInt q = BigInt::DivMod(BigInt(a), BigInt(b), &rem);
    EXPECT_EQ(q, BigInt(a / b));
    EXPECT_EQ(rem, BigInt(a % b));
  }
}

TEST(BigIntTest, DivModWideRandomReconstruction) {
  Rng rng(24);
  for (int i = 0; i < 300; ++i) {
    BigInt a = BigInt::Random(&rng, 256, false);
    BigInt b = BigInt::Random(&rng, 128, true);
    BigInt rem;
    BigInt q = BigInt::DivMod(a, b, &rem);
    EXPECT_LT(BigInt::Compare(rem, b), 0);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), rem), a);
  }
}

TEST(BigIntTest, ShiftRoundTrip) {
  BigInt v = BigInt::FromHex("123456789abcdef0fedcba9876543210");
  for (size_t s : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(BigInt::ShiftRight(BigInt::ShiftLeft(v, s), s), v) << s;
  }
}

TEST(BigIntTest, BitLengthAndBit) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(0x80000000ull).BitLength(), 32u);
  BigInt v(0b1011);
  EXPECT_TRUE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(100));
}

TEST(BigIntTest, ModPowKnownValues) {
  // 3^7 mod 1000 = 187 ; 2^10 mod 17 = 4
  EXPECT_EQ(BigInt::ModPow(BigInt(3), BigInt(7), BigInt(1000)), BigInt(187));
  EXPECT_EQ(BigInt::ModPow(BigInt(2), BigInt(10), BigInt(17)), BigInt(4));
}

TEST(BigIntTest, ModPowFermat) {
  // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
  BigInt p(1000000007ull);
  Rng rng(25);
  for (int i = 0; i < 50; ++i) {
    BigInt a(rng.Next() % 1000000006ull + 1);
    EXPECT_EQ(BigInt::ModPow(a, BigInt(1000000006ull), p), BigInt(1));
  }
}

TEST(BigIntTest, GcdKnownValues) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
}

TEST(BigIntTest, ModInverse) {
  Rng rng(26);
  BigInt m(1000000007ull);  // prime modulus -> every nonzero a invertible
  for (int i = 0; i < 200; ++i) {
    BigInt a(rng.Next() % 1000000006ull + 1);
    BigInt inv;
    ASSERT_TRUE(BigInt::ModInverse(a, m, &inv));
    EXPECT_EQ(BigInt::Mod(BigInt::Mul(a, inv), m), BigInt(1));
  }
}

TEST(BigIntTest, ModInverseFailsWhenNotCoprime) {
  BigInt inv;
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9), &inv));
}

TEST(BigIntTest, PrimalityKnownValues) {
  Rng rng(27);
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(2), &rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(3), &rng));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt(1000000007ull), &rng));
  EXPECT_TRUE(
      BigInt::IsProbablePrime(BigInt(0xFFFFFFFFFFFFFFC5ull), &rng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(1), &rng));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(561), &rng));    // Carmichael
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt(41041), &rng));  // Carmichael
  EXPECT_FALSE(BigInt::IsProbablePrime(
      BigInt::Mul(BigInt(1000003), BigInt(1000033)), &rng));
}

TEST(BigIntTest, GeneratePrimeHasExactBits) {
  Rng rng(28);
  for (size_t bits : {64u, 96u}) {
    BigInt p = BigInt::GeneratePrime(&rng, bits);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(BigInt::IsProbablePrime(p, &rng));
  }
}

// --- RSA ------------------------------------------------------------------------

class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xC0FFEE);
    key_ = new RsaPrivateKey(RsaGenerateKey(&rng, 512));
  }
  static void TearDownTestSuite() {
    delete key_;
    key_ = nullptr;
  }
  static RsaPrivateKey* key_;
};

RsaPrivateKey* RsaTest::key_ = nullptr;

TEST_F(RsaTest, SignVerifyRoundTrip) {
  Digest d = ComputeDigest("mb-tree root", 12);
  RsaSignature sig = RsaSignDigest(*key_, d);
  EXPECT_EQ(sig.size(), key_->PublicKey().ModulusBytes());
  EXPECT_TRUE(RsaVerifyDigest(key_->PublicKey(), d, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongDigest) {
  Digest d = ComputeDigest("root", 4);
  RsaSignature sig = RsaSignDigest(*key_, d);
  Digest other = ComputeDigest("soot", 4);
  Status st = RsaVerifyDigest(key_->PublicKey(), other, sig);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  Digest d = ComputeDigest("root", 4);
  RsaSignature sig = RsaSignDigest(*key_, d);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(RsaVerifyDigest(key_->PublicKey(), d, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongLength) {
  Digest d = ComputeDigest("root", 4);
  RsaSignature sig = RsaSignDigest(*key_, d);
  sig.pop_back();
  EXPECT_FALSE(RsaVerifyDigest(key_->PublicKey(), d, sig).ok());
}

TEST_F(RsaTest, VerifyRejectsOutOfRangeSignature) {
  Digest d = ComputeDigest("root", 4);
  size_t k = key_->PublicKey().ModulusBytes();
  RsaSignature huge(k, 0xFF);  // >= n
  EXPECT_FALSE(RsaVerifyDigest(key_->PublicKey(), d, huge).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  Rng rng(0xDECAF);
  RsaPrivateKey other = RsaGenerateKey(&rng, 512);
  Digest d = ComputeDigest("root", 4);
  RsaSignature sig = RsaSignDigest(*key_, d);
  EXPECT_FALSE(RsaVerifyDigest(other.PublicKey(), d, sig).ok());
}

TEST_F(RsaTest, DeterministicSignature) {
  Digest d = ComputeDigest("root", 4);
  EXPECT_EQ(RsaSignDigest(*key_, d), RsaSignDigest(*key_, d));
}

TEST(RsaKeyGenTest, DeterministicForSeed) {
  Rng a(42), b(42);
  RsaPrivateKey ka = RsaGenerateKey(&a, 512);
  RsaPrivateKey kb = RsaGenerateKey(&b, 512);
  EXPECT_EQ(ka.n, kb.n);
  EXPECT_EQ(ka.d, kb.d);
}

TEST(RsaKeyGenTest, ModulusHasRequestedBits) {
  Rng rng(43);
  RsaPrivateKey key = RsaGenerateKey(&rng, 768);
  EXPECT_EQ(key.n.BitLength(), 768u);
}

}  // namespace
}  // namespace sae::crypto
