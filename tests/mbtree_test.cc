// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit + property tests for the MB-tree and its VO machinery: digest
// maintenance across splits/merges, VO round trips, client verification of
// honest results, and detection of every tampering mode.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "crypto/rsa.h"
#include "mbtree/mb_tree.h"
#include "mbtree/vo.h"
#include "storage/page_store.h"
#include "util/random.h"

namespace sae::mbtree {
namespace {

using storage::BufferPool;
using storage::InMemoryPageStore;
using storage::Record;
using storage::RecordCodec;

constexpr size_t kRecSize = 64;

// Shared RSA key (512-bit, generated once — keygen is the slow part).
crypto::RsaPrivateKey* SharedKey() {
  static crypto::RsaPrivateKey* key = [] {
    Rng rng(0xFEED);
    return new crypto::RsaPrivateKey(crypto::RsaGenerateKey(&rng, 512));
  }();
  return key;
}

// A miniature TOM stack: records in a map, MB-tree over digests, a fetcher
// resolving rids to record bytes. Rids are record ids for simplicity.
class MbFixture : public ::testing::Test {
 protected:
  MbFixture() : pool_(&store_, 512), codec_(kRecSize) {}

  void MakeTree(size_t max_leaf = 5, size_t max_internal = 4) {
    MbTreeOptions options;
    options.max_leaf_entries = max_leaf;
    options.max_internal_keys = max_internal;
    auto r = MbTree::Create(&pool_, options);
    ASSERT_TRUE(r.ok());
    tree_ = std::move(r).ValueOrDie();
  }

  MbEntry EntryFor(const Record& record) {
    std::vector<uint8_t> bytes = codec_.Serialize(record);
    return MbEntry{record.key, storage::Rid(record.id),
                   crypto::ComputeDigest(bytes.data(), bytes.size())};
  }

  void InsertRecord(uint64_t id, uint32_t key) {
    Record r = codec_.MakeRecord(id, key);
    records_[id] = r;
    ASSERT_TRUE(tree_->Insert(EntryFor(r)).ok());
  }

  void DeleteRecord(uint64_t id) {
    auto it = records_.find(id);
    ASSERT_NE(it, records_.end());
    ASSERT_TRUE(tree_->Delete(it->second.key, storage::Rid(id)).ok());
    records_.erase(it);
  }

  MbTree::RecordFetcher Fetcher() {
    return [this](storage::Rid rid) -> Result<std::vector<uint8_t>> {
      auto it = records_.find(rid);
      if (it == records_.end()) return Status::NotFound("no such record");
      return codec_.Serialize(it->second);
    };
  }

  // Expected result records for [lo, hi], in key order.
  std::vector<Record> Expected(uint32_t lo, uint32_t hi) const {
    std::vector<Record> out;
    for (const auto& [id, r] : records_) {
      if (r.key >= lo && r.key <= hi) out.push_back(r);
    }
    std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
      return a.key != b.key ? a.key < b.key : a.id < b.id;
    });
    return out;
  }

  // Runs the full SP+client path for [lo, hi] and returns the client status.
  Status QueryAndVerify(uint32_t lo, uint32_t hi,
                        std::vector<Record>* results_out = nullptr) {
    std::vector<Record> results = Expected(lo, hi);
    auto vo = tree_->BuildVo(lo, hi, Fetcher());
    if (!vo.ok()) return vo.status();
    vo.value().signature =
        crypto::RsaSignDigest(
        *SharedKey(), crypto::EpochStampedDigest(tree_->root_digest(), 0));
    // Exercise the wire format every time.
    auto reparsed =
        VerificationObject::Deserialize(vo.value().Serialize());
    if (!reparsed.ok()) return reparsed.status();
    if (results_out) *results_out = results;
    return VerifyVO(reparsed.value(), lo, hi, results,
                    SharedKey()->PublicKey(), codec_);
  }

  InMemoryPageStore store_;
  BufferPool pool_;
  RecordCodec codec_;
  std::unique_ptr<MbTree> tree_;
  std::map<uint64_t, Record> records_;  // rid/id -> record
};

TEST_F(MbFixture, EmptyTreeValidates) {
  MakeTree();
  EXPECT_TRUE(tree_->Validate().ok());
  EXPECT_EQ(tree_->size(), 0u);
}

TEST_F(MbFixture, InsertMaintainsDigests) {
  MakeTree();
  for (uint64_t i = 0; i < 100; ++i) {
    InsertRecord(i + 1, uint32_t((i * 37) % 1000));
    ASSERT_TRUE(tree_->Validate().ok()) << "after insert " << i;
  }
  EXPECT_GT(tree_->height(), 1u);
}

TEST_F(MbFixture, DeleteMaintainsDigests) {
  MakeTree();
  for (uint64_t i = 0; i < 80; ++i) InsertRecord(i + 1, uint32_t(i * 5));
  for (uint64_t i = 0; i < 80; ++i) {
    DeleteRecord(i + 1);
    ASSERT_TRUE(tree_->Validate().ok()) << "after delete " << i;
  }
  EXPECT_EQ(tree_->size(), 0u);
  EXPECT_EQ(tree_->height(), 1u);
}

TEST_F(MbFixture, RootDigestChangesOnUpdate) {
  MakeTree();
  InsertRecord(1, 10);
  crypto::Digest before = tree_->root_digest();
  InsertRecord(2, 20);
  EXPECT_NE(tree_->root_digest(), before);
  crypto::Digest with_two = tree_->root_digest();
  DeleteRecord(2);
  EXPECT_EQ(tree_->root_digest(), before);
  EXPECT_NE(tree_->root_digest(), with_two);
}

TEST_F(MbFixture, BulkLoadMatchesIncrementalDigest) {
  MakeTree(5, 4);
  for (uint64_t i = 0; i < 60; ++i) InsertRecord(i + 1, uint32_t(i * 3));
  crypto::Digest incremental = tree_->root_digest();

  // Fresh tree, same data, bulk loaded (full leaves change node grouping, so
  // only compare *after* rebuilding with the same structure is not possible;
  // instead verify bulk-load digests validate internally and queries verify).
  InMemoryPageStore store2;
  BufferPool pool2(&store2, 512);
  MbTreeOptions options;
  options.max_leaf_entries = 5;
  options.max_internal_keys = 4;
  auto bulk = MbTree::Create(&pool2, options).ValueOrDie();
  std::vector<MbEntry> entries;
  for (const auto& [id, r] : records_) entries.push_back(EntryFor(r));
  std::sort(entries.begin(), entries.end(),
            [](const MbEntry& a, const MbEntry& b) { return a.key < b.key; });
  ASSERT_TRUE(bulk->BulkLoad(entries).ok());
  ASSERT_TRUE(bulk->Validate().ok());
  EXPECT_EQ(bulk->size(), tree_->size());
  (void)incremental;
}

TEST_F(MbFixture, RangeSearchReturnsPostingsInOrder) {
  MakeTree();
  for (uint64_t i = 0; i < 50; ++i) InsertRecord(i + 1, uint32_t(i * 2));
  std::vector<MbEntry> out;
  ASSERT_TRUE(tree_->RangeSearch(10, 30, &out).ok());
  ASSERT_EQ(out.size(), 11u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, 10 + 2 * i);
  }
}

TEST_F(MbFixture, HonestQueryVerifies) {
  MakeTree();
  for (uint64_t i = 0; i < 200; ++i) InsertRecord(i + 1, uint32_t(i * 7));
  for (auto [lo, hi] : std::vector<std::pair<uint32_t, uint32_t>>{
           {100, 300}, {0, 50}, {1200, 1400}, {0, 2000}, {700, 700}}) {
    EXPECT_TRUE(QueryAndVerify(lo, hi).ok()) << lo << ".." << hi;
  }
}

TEST_F(MbFixture, EmptyResultVerifies) {
  MakeTree();
  for (uint64_t i = 0; i < 50; ++i) InsertRecord(i + 1, uint32_t(i * 100));
  // Gap between 100*i values.
  EXPECT_TRUE(QueryAndVerify(101, 199).ok());
}

TEST_F(MbFixture, RangeTouchingDomainEdgesVerifies) {
  MakeTree();
  for (uint64_t i = 0; i < 60; ++i) InsertRecord(i + 1, uint32_t(i * 9 + 5));
  // No left boundary exists for lo=0; no right boundary for a huge hi.
  EXPECT_TRUE(QueryAndVerify(0, 50).ok());
  EXPECT_TRUE(QueryAndVerify(400, 4000000).ok());
  EXPECT_TRUE(QueryAndVerify(0, 4000000).ok());
}

TEST_F(MbFixture, DetectsDroppedRecord) {
  MakeTree();
  for (uint64_t i = 0; i < 100; ++i) InsertRecord(i + 1, uint32_t(i * 11));
  std::vector<Record> results = Expected(100, 500);
  ASSERT_GE(results.size(), 3u);
  auto vo = tree_->BuildVo(100, 500, Fetcher()).ValueOrDie();
  vo.signature = crypto::RsaSignDigest(
        *SharedKey(), crypto::EpochStampedDigest(tree_->root_digest(), 0));

  std::vector<Record> tampered = results;
  tampered.erase(tampered.begin() + 1);
  Status st = VerifyVO(vo, 100, 500, tampered, SharedKey()->PublicKey(),
                       codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(MbFixture, DetectsInjectedRecord) {
  MakeTree();
  for (uint64_t i = 0; i < 100; ++i) InsertRecord(i + 1, uint32_t(i * 11));
  std::vector<Record> results = Expected(100, 500);
  auto vo = tree_->BuildVo(100, 500, Fetcher()).ValueOrDie();
  vo.signature = crypto::RsaSignDigest(
        *SharedKey(), crypto::EpochStampedDigest(tree_->root_digest(), 0));

  std::vector<Record> tampered = results;
  tampered.insert(tampered.begin() + 1, codec_.MakeRecord(9999, 150));
  EXPECT_FALSE(
      VerifyVO(vo, 100, 500, tampered, SharedKey()->PublicKey(), codec_)
          .ok());
}

TEST_F(MbFixture, DetectsModifiedRecord) {
  MakeTree();
  for (uint64_t i = 0; i < 100; ++i) InsertRecord(i + 1, uint32_t(i * 11));
  std::vector<Record> results = Expected(100, 500);
  ASSERT_FALSE(results.empty());
  auto vo = tree_->BuildVo(100, 500, Fetcher()).ValueOrDie();
  vo.signature = crypto::RsaSignDigest(
        *SharedKey(), crypto::EpochStampedDigest(tree_->root_digest(), 0));

  std::vector<Record> tampered = results;
  tampered[0].payload[0] ^= 0xFF;
  EXPECT_FALSE(
      VerifyVO(vo, 100, 500, tampered, SharedKey()->PublicKey(), codec_)
          .ok());
}

TEST_F(MbFixture, DetectsStaleSignature) {
  MakeTree();
  for (uint64_t i = 0; i < 50; ++i) InsertRecord(i + 1, uint32_t(i * 13));
  crypto::RsaSignature stale =
      crypto::RsaSignDigest(
        *SharedKey(), crypto::EpochStampedDigest(tree_->root_digest(), 0));
  InsertRecord(1000, 333);  // root digest moves on

  std::vector<Record> results = Expected(0, 10000);
  auto vo = tree_->BuildVo(0, 10000, Fetcher()).ValueOrDie();
  vo.signature = stale;
  EXPECT_FALSE(
      VerifyVO(vo, 0, 10000, results, SharedKey()->PublicKey(), codec_).ok());
}

TEST_F(MbFixture, DetectsWrongQueryRangeClaim) {
  MakeTree();
  for (uint64_t i = 0; i < 100; ++i) InsertRecord(i + 1, uint32_t(i * 11));
  // VO constructed for [100, 500] cannot verify for [100, 600].
  std::vector<Record> results = Expected(100, 500);
  auto vo = tree_->BuildVo(100, 500, Fetcher()).ValueOrDie();
  vo.signature = crypto::RsaSignDigest(
        *SharedKey(), crypto::EpochStampedDigest(tree_->root_digest(), 0));
  EXPECT_FALSE(
      VerifyVO(vo, 100, 600, results, SharedKey()->PublicKey(), codec_).ok());
}

TEST_F(MbFixture, VoSerializationRoundTrip) {
  MakeTree();
  for (uint64_t i = 0; i < 150; ++i) InsertRecord(i + 1, uint32_t(i * 4));
  auto vo = tree_->BuildVo(40, 360, Fetcher()).ValueOrDie();
  vo.signature = crypto::RsaSignDigest(
        *SharedKey(), crypto::EpochStampedDigest(tree_->root_digest(), 0));
  std::vector<uint8_t> bytes = vo.Serialize();
  auto back = VerificationObject::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Serialize(), bytes);
}

TEST_F(MbFixture, VoDeserializeRejectsGarbage) {
  std::vector<uint8_t> junk{0x00, 0x01, 0x02};
  EXPECT_FALSE(VerificationObject::Deserialize(junk).ok());
  std::vector<uint8_t> empty;
  EXPECT_FALSE(VerificationObject::Deserialize(empty).ok());
}

TEST_F(MbFixture, VoDeserializeRejectsTruncation) {
  MakeTree();
  for (uint64_t i = 0; i < 60; ++i) InsertRecord(i + 1, uint32_t(i * 4));
  auto vo = tree_->BuildVo(40, 120, Fetcher()).ValueOrDie();
  vo.signature = crypto::RsaSignDigest(
        *SharedKey(), crypto::EpochStampedDigest(tree_->root_digest(), 0));
  std::vector<uint8_t> bytes = vo.Serialize();
  for (size_t cut : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(VerificationObject::Deserialize(truncated).ok()) << cut;
  }
}

TEST_F(MbFixture, DefaultFanoutsMatchPageMath) {
  MbTreeOptions options;  // defaults
  auto tree = MbTree::Create(&pool_, options).ValueOrDie();
  // (4096-16)/32 = 127 leaf entries; (4096-40)/28 = 144 internal keys.
  EXPECT_EQ(tree->max_leaf_entries(), 127u);
  EXPECT_EQ(tree->max_internal_keys(), 144u);
}

// Property test: random updates with validation plus verified queries.
class MbRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MbRandomizedTest, UpdatesAndQueriesStayVerifiable) {
  InMemoryPageStore store;
  BufferPool pool(&store, 1024);
  RecordCodec codec(kRecSize);
  MbTreeOptions options;
  options.max_leaf_entries = 6;
  options.max_internal_keys = 5;
  auto tree = MbTree::Create(&pool, options).ValueOrDie();

  std::map<uint64_t, Record> records;
  auto fetch = [&](storage::Rid rid) -> Result<std::vector<uint8_t>> {
    auto it = records.find(rid);
    if (it == records.end()) return Status::NotFound("no record");
    return codec.Serialize(it->second);
  };

  Rng rng(GetParam());
  uint64_t next_id = 1;
  for (int step = 0; step < 800; ++step) {
    if (records.empty() || rng.NextBool(0.65)) {
      Record r =
          codec.MakeRecord(next_id++, uint32_t(rng.NextBounded(3000)));
      std::vector<uint8_t> bytes = codec.Serialize(r);
      ASSERT_TRUE(tree->Insert(MbEntry{r.key, storage::Rid(r.id),
                                       crypto::ComputeDigest(bytes.data(),
                                                             bytes.size())})
                      .ok());
      records[r.id] = r;
    } else {
      auto it = records.begin();
      std::advance(it, rng.NextBounded(records.size()));
      ASSERT_TRUE(tree->Delete(it->second.key, storage::Rid(it->first)).ok());
      records.erase(it);
    }

    if (step % 100 == 99) {
      ASSERT_TRUE(tree->Validate().ok()) << "step " << step;
      uint32_t lo = uint32_t(rng.NextBounded(3000));
      uint32_t hi = lo + uint32_t(rng.NextBounded(500));
      std::vector<Record> results;
      for (const auto& [id, r] : records) {
        if (r.key >= lo && r.key <= hi) results.push_back(r);
      }
      std::sort(results.begin(), results.end(),
                [](const Record& a, const Record& b) {
                  return a.key != b.key ? a.key < b.key : a.id < b.id;
                });
      auto vo = tree->BuildVo(lo, hi, fetch);
      ASSERT_TRUE(vo.ok());
      vo.value().signature =
          crypto::RsaSignDigest(
          *SharedKey(), crypto::EpochStampedDigest(tree->root_digest(), 0));
      ASSERT_TRUE(VerifyVO(vo.value(), lo, hi, results,
                           SharedKey()->PublicKey(), codec)
                      .ok())
          << "step " << step << " range [" << lo << "," << hi << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbRandomizedTest, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace sae::mbtree
