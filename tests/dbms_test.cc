// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit tests for the Table facade: CRUD, range execution, bulk load, and
// separate index/heap access accounting.

#include <gtest/gtest.h>

#include <map>

#include "dbms/table.h"
#include "storage/page_store.h"
#include "util/random.h"

namespace sae::dbms {
namespace {

using storage::InMemoryPageStore;

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : index_pool_(&index_store_, 256), heap_pool_(&heap_store_, 256) {
    auto t = Table::Create(&index_pool_, &heap_pool_, 100);
    EXPECT_TRUE(t.ok());
    table_ = std::move(t).ValueOrDie();
  }

  Record Make(uint64_t id, uint32_t key) {
    return table_->codec().MakeRecord(id, key);
  }

  InMemoryPageStore index_store_;
  InMemoryPageStore heap_store_;
  BufferPool index_pool_;
  BufferPool heap_pool_;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, InsertGetRoundTrip) {
  Record r = Make(1, 100);
  ASSERT_TRUE(table_->Insert(r).ok());
  auto got = table_->Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), r);
  EXPECT_EQ(table_->size(), 1u);
}

TEST_F(TableTest, DuplicateIdRejected) {
  ASSERT_TRUE(table_->Insert(Make(1, 100)).ok());
  EXPECT_EQ(table_->Insert(Make(1, 200)).code(), StatusCode::kAlreadyExists);
}

TEST_F(TableTest, DuplicateKeysAllowed) {
  ASSERT_TRUE(table_->Insert(Make(1, 100)).ok());
  ASSERT_TRUE(table_->Insert(Make(2, 100)).ok());
  std::vector<Record> out;
  ASSERT_TRUE(table_->RangeQuery(100, 100, &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(TableTest, DeleteRemovesFromIndexAndHeap) {
  ASSERT_TRUE(table_->Insert(Make(1, 100)).ok());
  ASSERT_TRUE(table_->Delete(1).ok());
  EXPECT_EQ(table_->size(), 0u);
  EXPECT_EQ(table_->Get(1).status().code(), StatusCode::kNotFound);
  std::vector<Record> out;
  ASSERT_TRUE(table_->RangeQuery(0, 1000, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(table_->Delete(1).code(), StatusCode::kNotFound);
}

TEST_F(TableTest, UpdateChangesKey) {
  ASSERT_TRUE(table_->Insert(Make(1, 100)).ok());
  Record moved = Make(1, 900);
  ASSERT_TRUE(table_->Update(moved).ok());
  std::vector<Record> out;
  ASSERT_TRUE(table_->RangeQuery(100, 100, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(table_->RangeQuery(900, 900, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], moved);
}

TEST_F(TableTest, RangeQueryReturnsKeyOrder) {
  Rng rng(5);
  std::multimap<uint32_t, Record> model;
  for (uint64_t id = 1; id <= 400; ++id) {
    Record r = Make(id, uint32_t(rng.NextBounded(2000)));
    ASSERT_TRUE(table_->Insert(r).ok());
    model.emplace(r.key, r);
  }
  for (int q = 0; q < 25; ++q) {
    uint32_t lo = uint32_t(rng.NextBounded(2000));
    uint32_t hi = lo + uint32_t(rng.NextBounded(400));
    std::vector<Record> out;
    ASSERT_TRUE(table_->RangeQuery(lo, hi, &out).ok());
    size_t expect = 0;
    for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi;
         ++it) {
      ++expect;
    }
    ASSERT_EQ(out.size(), expect);
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_LE(out[i - 1].key, out[i].key);
    }
  }
}

TEST_F(TableTest, BulkLoadThenQuery) {
  std::vector<Record> records;
  for (uint64_t id = 1; id <= 1000; ++id) {
    records.push_back(Make(id, uint32_t(id * 3)));
  }
  ASSERT_TRUE(table_->BulkLoad(records).ok());
  EXPECT_EQ(table_->size(), 1000u);
  ASSERT_TRUE(table_->index().Validate().ok());

  std::vector<Record> out;
  ASSERT_TRUE(table_->RangeQuery(300, 600, &out).ok());
  EXPECT_EQ(out.size(), 101u);  // keys 300, 303, ..., 600
}

TEST_F(TableTest, BulkLoadRejectsUnsortedAndDuplicates) {
  std::vector<Record> unsorted{Make(1, 10), Make(2, 5)};
  EXPECT_FALSE(table_->BulkLoad(unsorted).ok());

  auto t2 = Table::Create(&index_pool_, &heap_pool_, 100).ValueOrDie();
  std::vector<Record> dup_id{Make(1, 5), Make(1, 10)};
  EXPECT_FALSE(t2->BulkLoad(dup_id).ok());
}

TEST_F(TableTest, IndexAndHeapAccessesAreSeparated) {
  std::vector<Record> records;
  for (uint64_t id = 1; id <= 2000; ++id) {
    records.push_back(Make(id, uint32_t(id)));
  }
  ASSERT_TRUE(table_->BulkLoad(records).ok());
  index_pool_.ResetStats();
  heap_pool_.ResetStats();

  std::vector<Record> out;
  ASSERT_TRUE(table_->RangeQuery(500, 700, &out).ok());
  ASSERT_EQ(out.size(), 201u);
  EXPECT_GT(index_pool_.stats().accesses, 0u);
  EXPECT_GT(heap_pool_.stats().accesses, 0u);
}

TEST_F(TableTest, StorageAccountingGrowsWithData) {
  size_t heap0 = table_->HeapSizeBytes();
  std::vector<Record> records;
  for (uint64_t id = 1; id <= 500; ++id) {
    records.push_back(Make(id, uint32_t(id)));
  }
  ASSERT_TRUE(table_->BulkLoad(records).ok());
  EXPECT_GT(table_->HeapSizeBytes(), heap0);
  EXPECT_GT(table_->IndexSizeBytes(), 0u);
}

}  // namespace
}  // namespace sae::dbms
