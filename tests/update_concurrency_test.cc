// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Interleaved read/write stress suite for the versioned update pipeline:
// writer threads push randomized Insert/Delete schedules (fixed seeds)
// while reader threads run verified range queries on the same system —
// no exclusive-access phase anywhere. Correctness is checked against a
// SERIAL ORACLE REPLAY: every update returns the epoch at which it
// serialized (the writer lock makes epochs a total order), every verified
// query carries the epoch it observed (the token/VO stamp), so after the
// threads join we replay the updates in epoch order and require each
// query's results to equal the oracle state at exactly its epoch. Run for
// both SAE and TOM; the whole suite is part of the CI ThreadSanitizer job.

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_engine.h"
#include "core/system.h"
#include "util/random.h"

namespace sae {
namespace {

using core::AttackMode;
using core::BatchOp;
using core::MixedStats;
using core::QueryEngine;
using core::SaeSystem;
using core::TomSystem;
using storage::Record;
using storage::RecordCodec;
using storage::RecordId;

constexpr size_t kRecSize = 64;
constexpr uint32_t kKeyDomain = 20000;

std::vector<Record> InitialDataset(size_t n) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records;
  records.reserve(n);
  for (uint64_t id = 1; id <= n; ++id) {
    records.push_back(codec.MakeRecord(id, uint32_t(id * 10)));
  }
  return records;
}

uint64_t OutcomeEpoch(const SaeSystem::QueryOutcome& outcome) {
  return outcome.vt.epoch;
}
uint64_t OutcomeEpoch(const TomSystem::QueryOutcome& outcome) {
  return outcome.vo.epoch;
}

struct UpdateLogEntry {
  uint64_t epoch = 0;
  bool is_insert = false;
  Record record;  // insert payload
  RecordId id = 0;  // delete target
};

struct QueryLogEntry {
  uint64_t epoch = 0;
  uint32_t lo = 0;
  uint32_t hi = 0;
  std::vector<Record> results;
};

std::vector<Record> SortedByKeyThenId(std::vector<Record> records) {
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.key != b.key ? a.key < b.key : a.id < b.id;
            });
  return records;
}

// The stress schedule, shared by the SAE and TOM instantiations.
struct StressConfig {
  size_t initial_records = 400;
  size_t writer_threads = 2;
  size_t reader_threads = 2;
  size_t ops_per_writer = 20;      // alternating insert/delete
  size_t queries_per_reader = 16;
  uint64_t seed = 0x5AE5EED;       // fixed: the schedule is reproducible
};

template <typename System>
void RunInterleavedStress(System* system, const StressConfig& config) {
  RecordCodec codec(kRecSize);
  std::vector<Record> initial = InitialDataset(config.initial_records);
  SAE_CHECK_OK(system->Load(initial));
  ASSERT_EQ(system->epoch(), 1u);

  std::vector<std::vector<UpdateLogEntry>> update_logs(config.writer_threads);
  std::vector<std::vector<QueryLogEntry>> query_logs(config.reader_threads);
  std::vector<std::string> errors(config.writer_threads +
                                  config.reader_threads);

  // Writers: each owns a disjoint set of initial ids to delete and a
  // disjoint fresh-id range to insert, so every update must succeed.
  std::vector<std::thread> threads;
  for (size_t w = 0; w < config.writer_threads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(config.seed + 101 * w);
      std::ostringstream err;
      for (size_t op = 0; op < config.ops_per_writer; ++op) {
        if (op % 2 == 0) {
          Record fresh = codec.MakeRecord(
              1'000'000 + w * 10'000 + op,
              uint32_t(rng.NextBounded(kKeyDomain)));
          auto epoch = system->InsertVersioned(fresh);
          if (!epoch.ok()) {
            err << "insert failed: " << epoch.status().ToString() << "; ";
            continue;
          }
          update_logs[w].push_back(
              UpdateLogEntry{epoch.value(), true, fresh, 0});
        } else {
          RecordId victim = RecordId(1 + w * 50 + op / 2);
          auto epoch = system->DeleteVersioned(victim);
          if (!epoch.ok()) {
            err << "delete failed: " << epoch.status().ToString() << "; ";
            continue;
          }
          update_logs[w].push_back(
              UpdateLogEntry{epoch.value(), false, Record{}, victim});
        }
      }
      errors[w] = err.str();
    });
  }

  // Readers: verified range queries interleaving with the writers.
  for (size_t r = 0; r < config.reader_threads; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(config.seed + 7'777 * (r + 1));
      std::ostringstream err;
      for (size_t q = 0; q < config.queries_per_reader; ++q) {
        uint32_t lo = uint32_t(rng.NextBounded(kKeyDomain));
        uint32_t hi = lo + uint32_t(rng.NextBounded(kKeyDomain / 4)) + 1;
        auto outcome = system->ExecuteQuery(lo, hi);
        if (!outcome.ok()) {
          err << "query errored: " << outcome.status().ToString() << "; ";
          continue;
        }
        if (!outcome.value().verification.ok()) {
          err << "query [" << lo << "," << hi << "] rejected: "
              << outcome.value().verification.ToString() << "; ";
          continue;
        }
        query_logs[r].push_back(
            QueryLogEntry{OutcomeEpoch(outcome.value()), lo, hi,
                          std::move(outcome.value().results)});
      }
      errors[config.writer_threads + r] = err.str();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::string& err : errors) EXPECT_EQ(err, "");

  // The writer lock serializes updates: their epochs must form the dense
  // sequence 2 .. 1 + total_updates with no duplicates.
  std::vector<UpdateLogEntry> updates;
  for (auto& log : update_logs) {
    updates.insert(updates.end(), log.begin(), log.end());
  }
  std::sort(updates.begin(), updates.end(),
            [](const UpdateLogEntry& a, const UpdateLogEntry& b) {
              return a.epoch < b.epoch;
            });
  ASSERT_EQ(updates.size(),
            config.writer_threads * config.ops_per_writer);
  for (size_t i = 0; i < updates.size(); ++i) {
    ASSERT_EQ(updates[i].epoch, 2 + i) << "epochs not dense/unique";
  }
  EXPECT_EQ(system->epoch(), 1 + updates.size());

  // Serial oracle replay: walk queries in epoch order, advancing the
  // oracle state update by update; each verified result must equal the
  // oracle state at its epoch, restricted to its range. This is the
  // linearizability check the epoch snapshot makes exact.
  std::vector<QueryLogEntry> queries;
  for (auto& log : query_logs) {
    queries.insert(queries.end(), std::make_move_iterator(log.begin()),
                   std::make_move_iterator(log.end()));
  }
  std::sort(queries.begin(), queries.end(),
            [](const QueryLogEntry& a, const QueryLogEntry& b) {
              return a.epoch < b.epoch;
            });

  std::map<RecordId, Record> oracle;
  for (const Record& record : initial) oracle[record.id] = record;
  size_t next_update = 0;
  for (const QueryLogEntry& query : queries) {
    while (next_update < updates.size() &&
           updates[next_update].epoch <= query.epoch) {
      const UpdateLogEntry& update = updates[next_update];
      if (update.is_insert) {
        oracle[update.record.id] = update.record;
      } else {
        oracle.erase(update.id);
      }
      ++next_update;
    }
    std::vector<Record> expected;
    for (const auto& [id, record] : oracle) {
      if (record.key >= query.lo && record.key <= query.hi) {
        expected.push_back(record);
      }
    }
    EXPECT_EQ(SortedByKeyThenId(query.results),
              SortedByKeyThenId(std::move(expected)))
        << "query [" << query.lo << "," << query.hi << "] at epoch "
        << query.epoch << " disagrees with the serial oracle";
  }
}

TEST(UpdateConcurrencyTest, SaeInterleavedSchedulesMatchSerialOracle) {
  SaeSystem::Options options;
  options.record_size = kRecSize;
  SaeSystem system(options);
  StressConfig config;
  RunInterleavedStress(&system, config);
}

TEST(UpdateConcurrencyTest, TomInterleavedSchedulesMatchSerialOracle) {
  TomSystem::Options options;
  options.record_size = kRecSize;
  options.rsa_modulus_bits = 512;  // fast for tests (one re-sign per update)
  TomSystem system(options);
  StressConfig config;
  config.initial_records = 250;
  config.ops_per_writer = 12;
  config.queries_per_reader = 10;
  RunInterleavedStress(&system, config);
}

// Freshness attacks must be caught while writers advance the epoch
// underneath concurrent readers — the gate is exercised mid-interleaving.
TEST(UpdateConcurrencyTest, FreshnessAttacksRejectedUnderInterleaving) {
  SaeSystem::Options options;
  options.record_size = kRecSize;
  SaeSystem system(options);
  SAE_CHECK_OK(system.Load(InitialDataset(300)));
  RecordCodec codec(kRecSize);

  std::thread writer([&] {
    for (uint64_t i = 0; i < 12; ++i) {
      SAE_CHECK_OK(system.Insert(
          codec.MakeRecord(2'000'000 + i, uint32_t(17 * i % kKeyDomain))));
    }
  });
  std::vector<std::string> errors(2);
  std::vector<std::thread> attackers;
  for (size_t t = 0; t < 2; ++t) {
    attackers.emplace_back([&, t] {
      AttackMode mode = t == 0 ? AttackMode::kReplayStaleRoot
                               : AttackMode::kStaleVt;
      std::ostringstream err;
      for (int q = 0; q < 10; ++q) {
        auto outcome = system.ExecuteQuery(0, kKeyDomain, mode);
        if (!outcome.ok()) {
          err << "attack query errored; ";
          continue;
        }
        if (outcome.value().verification.code() != StatusCode::kStaleEpoch) {
          err << "attack not reported stale: "
              << outcome.value().verification.ToString() << "; ";
        }
      }
      errors[t] = err.str();
    });
  }
  writer.join();
  for (std::thread& thread : attackers) thread.join();
  EXPECT_EQ(errors[0], "");
  EXPECT_EQ(errors[1], "");
}

// The QueryEngine's mixed batches drive the same reader/writer interleaving
// through the worker pool; stats must reconcile with the system counters.
TEST(UpdateConcurrencyTest, MixedEngineBatchesReconcile) {
  SaeSystem::Options options;
  options.record_size = kRecSize;
  SaeSystem system(options);
  SAE_CHECK_OK(system.Load(InitialDataset(300)));
  RecordCodec codec(kRecSize);

  std::vector<BatchOp> ops;
  size_t n_queries = 0, n_updates = 0;
  for (size_t i = 0; i < 40; ++i) {
    if (i % 4 == 0) {
      ops.push_back(BatchOp::MakeInsert(
          codec.MakeRecord(3'000'000 + i, uint32_t(i * 31 % kKeyDomain))));
      ++n_updates;
    } else {
      uint32_t lo = uint32_t((i * 997) % kKeyDomain);
      ops.push_back(BatchOp::MakeQuery(lo, lo + 800));
      ++n_queries;
    }
  }

  core::UpdateStats before = system.update_stats();
  QueryEngine engine(QueryEngine::Options{4});
  MixedStats stats = engine.RunMixed(&system, ops);

  EXPECT_EQ(stats.queries, n_queries);
  EXPECT_EQ(stats.updates, n_updates);
  EXPECT_EQ(stats.accepted, n_queries);  // honest queries all verify
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.update_failures, 0u);
  EXPECT_GE(stats.update_latency_ms, stats.max_update_latency_ms);

  core::UpdateStats after = system.update_stats();
  EXPECT_EQ(after.inserts - before.inserts, n_updates);
  EXPECT_EQ(after.failed, before.failed);
  EXPECT_GT(after.shipment_bytes, before.shipment_bytes);
  EXPECT_GT(after.auth_bytes, before.auth_bytes);
  EXPECT_EQ(system.epoch(), 1 + n_updates);
}

}  // namespace
}  // namespace sae
