// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit tests for src/util: Status/Result, codecs, PRNG, Zipf, hex.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "util/codec.h"
#include "util/hex.h"
#include "util/random.h"
#include "util/status.h"
#include "util/zipf.h"

namespace sae {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing key");
  EXPECT_EQ(st.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes{
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::IoError("").code(),
      Status::Corruption("").code(),      Status::OutOfRange("").code(),
      Status::VerificationFailure("").code(),
      Status::Unimplemented("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IoError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int in, int* out) {
  SAE_ASSIGN_OR_RETURN(*out, HalveEven(in));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status st = UseAssignOrReturn(7, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// --- codec ---------------------------------------------------------------------

TEST(CodecTest, FixedWidthRoundTrip) {
  uint8_t buf[8];
  EncodeU16(buf, 0xBEEF);
  EXPECT_EQ(DecodeU16(buf), 0xBEEF);
  EncodeU32(buf, 0xDEADBEEFu);
  EXPECT_EQ(DecodeU32(buf), 0xDEADBEEFu);
  EncodeU64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeU64(buf), 0x0123456789ABCDEFull);
}

TEST(CodecTest, ByteWriterReaderRoundTrip) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU16(300);
  w.PutU32(70000);
  w.PutU64(1ull << 40);
  w.PutString("hello");
  std::vector<uint8_t> buf = w.Release();

  ByteReader r(buf);
  EXPECT_EQ(r.GetU8(), 7);
  EXPECT_EQ(r.GetU16(), 300);
  EXPECT_EQ(r.GetU32(), 70000u);
  EXPECT_EQ(r.GetU64(), 1ull << 40);
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.failed());
}

TEST(CodecTest, ReaderSetsStickyErrorOnTruncation) {
  ByteWriter w;
  w.PutU16(1234);
  std::vector<uint8_t> buf = w.Release();
  ByteReader r(buf);
  EXPECT_EQ(r.GetU32(), 0u);  // needs 4 bytes, only 2 available
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.GetU8(), 0);  // stays failed
  EXPECT_TRUE(r.failed());
}

TEST(CodecTest, EmptyStringRoundTrip) {
  ByteWriter w;
  w.PutString("");
  ByteReader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.failed());
}

// --- rng -----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NextRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(7);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// --- zipf ----------------------------------------------------------------------

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfGenerator zipf(1000, 0.8);
  Rng rng(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next(&rng)];
  // Rank 0 must dominate any mid-pack rank.
  EXPECT_GT(counts[0], counts[500] * 5);
}

TEST(ZipfTest, AllRanksWithinDomain) {
  ZipfGenerator zipf(50, 0.8);
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) EXPECT_LT(zipf.Next(&rng), 50u);
}

TEST(ZipfTest, ThetaZeroDegeneratesTowardUniform) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(8);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next(&rng)];
  for (const auto& [rank, count] : counts) {
    EXPECT_GT(count, kDraws / 10 * 0.85) << "rank " << rank;
    EXPECT_LT(count, kDraws / 10 * 1.15) << "rank " << rank;
  }
}

// Skew calibration. The paper states Zipf(0.8) puts "77% of the search keys
// in 20% of the domain"; under the standard Gray et al. parameterization
// (P(rank i) ~ 1/i^0.8 over 1000 buckets) the exact figure is ~65%, and no
// bucket count reaches 77% at theta = 0.8 (the limit is 0.2^0.2 = 72.5%).
// We pin our generator's true behaviour here and document the delta in
// docs/BENCHMARKS.md; the qualitative skew the SKW experiments rely on (dense
// low-domain region, sparse tail) is unaffected.
TEST(ZipfTest, SkewConcentration) {
  constexpr uint32_t kDomainMax = 10'000'000;
  SkewedKeyGenerator gen(kDomainMax, 0.8, 1000, 42);
  constexpr int kDraws = 200000;
  int in_low_fifth = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.Next() <= kDomainMax / 5) ++in_low_fifth;
  }
  double fraction = double(in_low_fifth) / kDraws;
  EXPECT_GT(fraction, 0.60);
  EXPECT_LT(fraction, 0.72);
}

TEST(ZipfTest, SkewedKeysStayInDomain) {
  SkewedKeyGenerator gen(1000, 0.8, 100, 1);
  for (int i = 0; i < 10000; ++i) EXPECT_LE(gen.Next(), 1000u);
}

// --- hex -----------------------------------------------------------------------

TEST(HexTest, EncodeDecode) {
  std::vector<uint8_t> data{0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  std::string hex = HexEncode(data.data(), data.size());
  EXPECT_EQ(hex, "deadbeef007f");
  EXPECT_EQ(HexDecode(hex), data);
}

TEST(HexTest, DecodeRejectsMalformed) {
  EXPECT_TRUE(HexDecode("abc").empty());   // odd length
  EXPECT_TRUE(HexDecode("zz").empty());    // non-hex
}

TEST(HexTest, EmptyRoundTrip) {
  EXPECT_EQ(HexEncode(nullptr, 0), "");
  EXPECT_TRUE(HexDecode("").empty());
}

}  // namespace
}  // namespace sae
