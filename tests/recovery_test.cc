// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Crash-recovery proofs for the durability subsystem (core/durability.h,
// storage/{wal,snapshot,fault_fs}.h). The centerpiece is an exhaustive
// crash-point matrix: a deterministic workload runs once crash-free to
// count its durability barriers, then re-runs once per barrier k with
// storage::FaultFs armed to fail exactly the k-th sync point; after every
// simulated power loss the system must recover to a state that is
//   (a) epoch-sound   — the recovered epoch is provable and published,
//   (b) verifiable    — a full sweep of verifying queries accepts,
//   (c) prefix-exact  — differentially equal to a never-crashed twin that
//       applied exactly the updates whose WAL records became durable.
// On top of the matrix: a WAL-corruption fuzzer (torn tails, bit flips,
// lying length prefixes), snapshot atomicity/fallback checks, and the
// rollback adversary — an SP restored from an older durable state is
// rejected by the unmodified client freshness gate as kStaleEpoch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/sharded_system.h"
#include "core/system.h"
#include "storage/fault_fs.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace sae {
namespace {

using core::DurabilityManager;
using core::SaeSystem;
using core::SnapshotState;
using core::TomSystem;
using core::WalUpdate;
using storage::FaultFs;
using storage::Key;
using storage::Record;
using storage::RecordCodec;
using storage::RecordId;

constexpr Key kMinKey = 0;
constexpr Key kMaxKey = ~Key{0};
constexpr size_t kRecordSize = 64;  // small records keep the matrix fast
constexpr uint64_t kSnapshotInterval = 4;

// Deterministic pseudo-randomness for the fuzzer (no real entropy: every
// failure must replay exactly).
uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 33;
}

template <typename System>
typename System::Options DurableOptions(crypto::HashScheme scheme,
                                        storage::Vfs* vfs,
                                        const std::string& dir) {
  typename System::Options options;
  options.record_size = kRecordSize;
  options.scheme = scheme;
  options.durability.enabled = true;
  options.durability.dir = dir;
  options.durability.vfs = vfs;
  options.durability.snapshot_interval = kSnapshotInterval;
  return options;
}

std::vector<Record> SeedDataset(const RecordCodec& codec, size_t n) {
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(codec.MakeRecord(RecordId(i + 1), Key(i * 10 + 5)));
  }
  return records;
}

// The deterministic update schedule driven against every system in this
// file: a mix of inserts and deletes, long enough to cross several
// snapshot boundaries at kSnapshotInterval.
struct Op {
  bool insert;
  RecordId id;
  Key key;
};

std::vector<Op> UpdateSchedule() {
  std::vector<Op> ops;
  for (int i = 0; i < 10; ++i) {
    ops.push_back({true, RecordId(100 + i), Key(40 + 7 * i)});
    if (i % 3 == 2) ops.push_back({false, RecordId(i + 1), 0});
  }
  return ops;  // 13 updates -> epochs 2..14, snapshots at 5, 9, 13
}

template <typename System>
Status ApplyOp(System* system, const Op& op, const RecordCodec& codec) {
  return op.insert ? system->Insert(codec.MakeRecord(op.id, op.key))
                   : system->Delete(op.id);
}

// Runs load + schedule; stops at the first storage failure (the armed
// crash) and reports how many updates SUCCEEDED before it.
template <typename System>
Status RunWorkload(System* system, const RecordCodec& codec,
                   size_t* updates_applied) {
  *updates_applied = 0;
  SAE_RETURN_NOT_OK(system->Load(SeedDataset(codec, 30)));
  for (const Op& op : UpdateSchedule()) {
    SAE_RETURN_NOT_OK(ApplyOp(system, op, codec));
    ++*updates_applied;
  }
  return Status::OK();
}

// Builds the never-crashed twin holding the first `updates` schedule
// entries (pure in-memory, no durability).
template <typename System>
std::unique_ptr<System> BuildTwin(crypto::HashScheme scheme, size_t updates,
                                  const RecordCodec& codec) {
  typename System::Options options;
  options.record_size = kRecordSize;
  options.scheme = scheme;
  auto twin = std::make_unique<System>(options);
  EXPECT_TRUE(twin->Load(SeedDataset(codec, 30)).ok());
  std::vector<Op> ops = UpdateSchedule();
  for (size_t i = 0; i < updates; ++i) {
    EXPECT_TRUE(ApplyOp(twin.get(), ops[i], codec).ok());
  }
  return twin;
}

// The verifying sweep every recovered system must pass: scans and
// aggregates across the key space, each accepted by the client.
template <typename System>
void VerifySweep(System* system) {
  const dbms::QueryRequest requests[] = {
      dbms::QueryRequest::Scan(kMinKey, kMaxKey),
      dbms::QueryRequest::Scan(40, 120),
      dbms::QueryRequest::Count(kMinKey, kMaxKey),
      dbms::QueryRequest::Sum(0, 200),
      dbms::QueryRequest::Min(50, 300),
      dbms::QueryRequest::Max(kMinKey, kMaxKey),
  };
  for (const dbms::QueryRequest& request : requests) {
    auto outcome = system->Query(request);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_TRUE(outcome.value().verification.ok())
        << outcome.value().verification.message();
  }
}

template <typename System>
std::vector<Record> FullScan(System* system) {
  auto outcome = system->Query(kMinKey, kMaxKey);
  EXPECT_TRUE(outcome.ok());
  return outcome.ok() ? outcome.value().results : std::vector<Record>{};
}

// --- the crash-point matrix --------------------------------------------------

template <typename System>
void RunCrashMatrix(crypto::HashScheme scheme) {
  RecordCodec codec(kRecordSize);

  // Pass 1: crash-free run counts the barriers and fixes the final state.
  FaultFs clean_fs;
  size_t total_updates = 0;
  {
    auto system = std::make_unique<System>(
        DurableOptions<System>(scheme, &clean_fs, "/db"));
    size_t applied = 0;
    ASSERT_TRUE(RunWorkload(system.get(), codec, &applied).ok());
    total_updates = applied;
  }
  const uint64_t sync_points = clean_fs.sync_points();
  ASSERT_GT(sync_points, kSnapshotInterval);  // sanity: barriers happened

  // Pass 2: one run per barrier. Between two adjacent barriers every
  // durable state is identical, so this enumerates ALL distinguishable
  // crash outcomes of the workload.
  for (uint64_t k = 1; k <= sync_points; ++k) {
    SCOPED_TRACE("crash at sync point " + std::to_string(k) + ", scheme " +
                 std::to_string(int(scheme)));
    FaultFs fs;
    fs.CrashAtSyncPoint(k);
    size_t applied = 0;
    {
      auto system = std::make_unique<System>(
          DurableOptions<System>(scheme, &fs, "/db"));
      Status st = RunWorkload(system.get(), codec, &applied);
      ASSERT_FALSE(st.ok());  // the armed crash must have fired
      ASSERT_TRUE(fs.crashed());
    }
    fs.DropVolatile();  // power loss: volatile bytes are gone

    auto recovered =
        System::Recover(DurableOptions<System>(scheme, &fs, "/db"));
    if (!recovered.ok()) {
      // Only legitimate before the epoch-1 baseline snapshot is durable:
      // its temp-file sync is barrier 1 and its rename is barrier 2, so
      // from barrier 3 on recovery must always succeed.
      ASSERT_EQ(recovered.status().code(), StatusCode::kNotFound);
      ASSERT_LE(k, 2u);
      continue;
    }
    System& system = *recovered.value();

    // (a) epoch-sound: exactly the updates whose WAL records became
    // durable are recovered. An update's WAL sync is its only barrier
    // between epochs, so the recovered epoch determines the prefix.
    const uint64_t epoch = system.epoch();
    ASSERT_GE(epoch, 1u);
    ASSERT_LE(epoch, 1 + total_updates);
    // The crash lost at most the single in-flight update.
    ASSERT_GE(epoch, 1 + applied);
    ASSERT_LE(epoch, 1 + applied + 1);

    // (b) verifiable as live traffic.
    VerifySweep(&system);

    // (c) differentially equal to the never-crashed twin of that prefix.
    auto twin = BuildTwin<System>(scheme, size_t(epoch - 1), codec);
    EXPECT_EQ(twin->epoch(), epoch);
    EXPECT_EQ(FullScan(twin.get()), FullScan(&system));
    if constexpr (std::is_same_v<System, TomSystem>) {
      EXPECT_EQ(twin->owner().signature(), system.owner().signature());
    }

    // The recovered system keeps working: one more durable update.
    ASSERT_TRUE(
        system.Insert(codec.MakeRecord(RecordId(9000 + k), Key(777))).ok());
    EXPECT_EQ(system.epoch(), epoch + 1);
  }
}

TEST(RecoveryMatrix, SaeSha1EveryCrashPointRecovers) {
  RunCrashMatrix<SaeSystem>(crypto::HashScheme::kSha1);
}

TEST(RecoveryMatrix, SaeSha256EveryCrashPointRecovers) {
  RunCrashMatrix<SaeSystem>(crypto::HashScheme::kSha256Trunc);
}

TEST(RecoveryMatrix, TomSha1EveryCrashPointRecovers) {
  RunCrashMatrix<TomSystem>(crypto::HashScheme::kSha1);
}

TEST(RecoveryMatrix, TomSha256EveryCrashPointRecovers) {
  RunCrashMatrix<TomSystem>(crypto::HashScheme::kSha256Trunc);
}

// --- WAL fuzzing -------------------------------------------------------------

std::vector<std::vector<uint8_t>> SampleWalPayloads(size_t n) {
  std::vector<std::vector<uint8_t>> payloads;
  RecordCodec codec(kRecordSize);
  for (size_t i = 0; i < n; ++i) {
    WalUpdate update;
    if (i % 3 == 0) {
      update.op = WalUpdate::kDelete;
      update.id = RecordId(i);
    } else {
      update.op = WalUpdate::kInsert;
      update.record = codec.MakeRecord(RecordId(i), Key(i * 13));
    }
    update.epoch = i + 2;
    payloads.push_back(EncodeWalUpdate(update));
  }
  return payloads;
}

// Writes `payloads` as a well-formed log at `path`.
void WriteWal(FaultFs* fs, const std::string& path,
              const std::vector<std::vector<uint8_t>>& payloads) {
  auto wal = storage::WriteAheadLog::Open(fs, path).ValueOrDie();
  for (const auto& payload : payloads) {
    ASSERT_TRUE(wal->Append(payload).ok());
  }
}

// Every mutation of a valid log must scan to a clean PREFIX of the
// original records: never an error, never a record past the mutation.
void ExpectScanIsPrefix(FaultFs* fs, const std::string& path,
                        const std::vector<std::vector<uint8_t>>& originals) {
  auto scanned = storage::ReadLog(fs, path);
  ASSERT_TRUE(scanned.ok()) << scanned.status().message();
  const auto& records = scanned.value().records;
  ASSERT_LE(records.size(), originals.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], originals[i]) << "record " << i << " mutated";
  }
}

TEST(WalFuzz, TornTailsTruncateToRecordBoundary) {
  FaultFs fs;
  auto payloads = SampleWalPayloads(12);
  WriteWal(&fs, "/wal", payloads);
  auto file = fs.Open("/wal", false).ValueOrDie();
  const uint64_t size = file->Size().ValueOrDie();

  // Cut the log at EVERY byte length; the scan must recover the longest
  // record prefix that still fits.
  std::vector<uint8_t> image(size);
  ASSERT_EQ(file->ReadAt(0, image.data(), size).ValueOrDie(), size);
  for (uint64_t cut = 0; cut <= size; ++cut) {
    ASSERT_TRUE(file->Truncate(cut).ok());
    auto scanned = storage::ReadLog(&fs, "/wal");
    ASSERT_TRUE(scanned.ok());
    uint64_t valid = scanned.value().valid_bytes;
    ASSERT_LE(valid, cut);
    EXPECT_EQ(scanned.value().torn_tail, valid < cut);
    ExpectScanIsPrefix(&fs, "/wal", payloads);
    // restore
    ASSERT_TRUE(file->Truncate(0).ok());
    ASSERT_TRUE(file->WriteAt(0, image.data(), size).ok());
  }
}

TEST(WalFuzz, BitFlipsNeverCrashAndNeverOverReplay) {
  FaultFs fs;
  auto payloads = SampleWalPayloads(12);
  WriteWal(&fs, "/wal", payloads);
  auto file = fs.Open("/wal", false).ValueOrDie();
  const uint64_t size = file->Size().ValueOrDie();
  std::vector<uint8_t> image(size);
  ASSERT_EQ(file->ReadAt(0, image.data(), size).ValueOrDie(), size);

  uint64_t rng = 0x5AEDB;
  for (int trial = 0; trial < 500; ++trial) {
    uint64_t pos = NextRand(&rng) % size;
    uint8_t flipped = image[pos] ^ uint8_t(1u << (NextRand(&rng) % 8));
    ASSERT_TRUE(file->WriteAt(pos, &flipped, 1).ok());
    ExpectScanIsPrefix(&fs, "/wal", payloads);
    ASSERT_TRUE(file->WriteAt(pos, &image[pos], 1).ok());  // restore
  }
}

TEST(WalFuzz, LyingLengthPrefixesEndTheValidPrefix) {
  FaultFs fs;
  auto payloads = SampleWalPayloads(8);
  WriteWal(&fs, "/wal", payloads);
  auto file = fs.Open("/wal", false).ValueOrDie();
  const uint64_t size = file->Size().ValueOrDie();
  std::vector<uint8_t> image(size);
  ASSERT_EQ(file->ReadAt(0, image.data(), size).ValueOrDie(), size);

  // Overwrite each record's length prefix with adversarial values: huge
  // (would allocate GiBs if trusted), just-past-EOF, and maximal.
  const uint32_t lies[] = {storage::kMaxWalPayload + 1, uint32_t(size),
                           0x7FFFFFFFu, 0xFFFFFFFFu};
  uint64_t offset = 0;
  for (const auto& payload : payloads) {
    for (uint32_t lie : lies) {
      uint8_t enc[4];
      EncodeU32(enc, lie);
      ASSERT_TRUE(file->WriteAt(offset, enc, 4).ok());
      ExpectScanIsPrefix(&fs, "/wal", payloads);
      ASSERT_TRUE(file->WriteAt(offset, image.data() + offset, 4).ok());
    }
    offset += storage::kWalRecordHeader + payload.size();
  }
}

TEST(WalFuzz, CrcValidGarbageRecordEndsReplayAtOpen) {
  // A record with a correct checksum but an undecodable payload cannot
  // come from LogUpdate; DurabilityManager::Open must cut the log there.
  FaultFs fs;
  auto payloads = SampleWalPayloads(4);
  const std::vector<uint8_t> garbage = {0x7F, 0x00, 0x01};  // unknown op
  WriteWal(&fs, "/db/wal", payloads);
  {
    auto wal = storage::WriteAheadLog::Open(&fs, "/db/wal").ValueOrDie();
    ASSERT_TRUE(wal->Append(garbage).ok());
  }
  core::DurabilityOptions options;
  options.enabled = true;
  options.dir = "/db";
  options.vfs = &fs;
  auto mgr = DurabilityManager::Open(options);
  ASSERT_TRUE(mgr.ok()) << mgr.status().message();
  EXPECT_EQ(mgr.value()->recovered().wal_tail.size(), payloads.size());
  EXPECT_TRUE(mgr.value()->recovered().wal_truncated);
  // The cut is durable: a raw re-scan no longer sees the garbage bytes.
  auto rescanned = storage::ReadLog(&fs, "/db/wal");
  ASSERT_TRUE(rescanned.ok());
  EXPECT_EQ(rescanned.value().records.size(), payloads.size());
  EXPECT_FALSE(rescanned.value().torn_tail);
}

// --- snapshot atomicity ------------------------------------------------------

TEST(SnapshotStore, CrashAtEitherBarrierLeavesPreviousSnapshotIntact) {
  const std::vector<uint8_t> payload_a(100, 0xAA);
  const std::vector<uint8_t> payload_b(100, 0xBB);
  for (uint64_t k = 1; k <= 2; ++k) {  // temp sync, rename
    FaultFs fs;
    storage::SnapshotStore store(&fs, "/snaps");
    ASSERT_TRUE(store.Write(7, payload_a).ok());
    fs.CrashAtSyncPoint(k);
    ASSERT_FALSE(store.Write(8, payload_b).ok());
    fs.DropVolatile();
    auto loaded = store.LoadLatest();
    ASSERT_TRUE(loaded.ok()) << "crash at barrier " << k;
    EXPECT_EQ(loaded.value().epoch, 7u);
    EXPECT_EQ(loaded.value().payload, payload_a);
    EXPECT_FALSE(loaded.value().fell_back);
  }
}

TEST(SnapshotStore, SkippedTempSyncWouldTearTheSnapshot) {
  // The FaultFs rename models the real sharp edge: content renamed without
  // a prior sync has no durable image. This test pins the model itself, so
  // the matrix above genuinely punishes a protocol that dropped the sync.
  FaultFs fs;
  auto file = fs.Open("/snaps/snap.tmp", true).ValueOrDie();
  const uint8_t byte = 1;
  ASSERT_TRUE(file->WriteAt(0, &byte, 1).ok());
  ASSERT_TRUE(fs.Rename("/snaps/snap.tmp",
                        "/snaps/snap-00000000000000000009").ok());
  fs.DropVolatile();
  storage::SnapshotStore store(&fs, "/snaps");
  EXPECT_EQ(store.LoadLatest().status().code(), StatusCode::kNotFound);
}

TEST(SnapshotStore, CorruptNewestFallsBackToPreviousValidSnapshot) {
  FaultFs fs;
  storage::SnapshotStore store(&fs, "/snaps");
  ASSERT_TRUE(store.Write(3, std::vector<uint8_t>(40, 0x33)).ok());
  ASSERT_TRUE(store.Write(4, std::vector<uint8_t>(40, 0x44)).ok());
  // Flip one payload byte of the newest file: its CRC fails, and the
  // previous snapshot must answer instead.
  auto file = fs.Open("/snaps/snap-00000000000000000004", false).ValueOrDie();
  uint8_t corrupted = 0x45;
  ASSERT_TRUE(file->WriteAt(30, &corrupted, 1).ok());
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().epoch, 3u);
  EXPECT_TRUE(loaded.value().fell_back);
  EXPECT_EQ(loaded.value().payload, std::vector<uint8_t>(40, 0x33));
}

TEST(SnapshotStore, GcKeepsTheNewestTwo) {
  FaultFs fs;
  storage::SnapshotStore store(&fs, "/snaps", 2);
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    ASSERT_TRUE(store.Write(epoch, {uint8_t(epoch)}).ok());
  }
  auto epochs = store.ListEpochs().ValueOrDie();
  EXPECT_EQ(epochs, (std::vector<uint64_t>{4, 5}));
}

// --- rollback adversary ------------------------------------------------------

// An attacker restores the SP from an older (internally consistent,
// fully durable) disk state. Recovery itself succeeds — the state is
// genuine, just old — but the recovered epoch lags, and the unmodified
// client freshness gate rejects the served answers as kStaleEpoch.
TEST(RollbackAdversary, SaeClientRejectsSnapshotRollback) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  auto options = DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs,
                                           "/db");
  SaeSystem system(options);
  ASSERT_TRUE(system.Load(SeedDataset(codec, 20)).ok());
  for (int i = 0; i < int(kSnapshotInterval); ++i) {  // force a checkpoint
    ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(200 + i), Key(500 + i))).ok());
  }
  // The attacker images the disk now...
  std::unique_ptr<FaultFs> rollback_fs = fs.Clone();
  // ...while the real system moves on.
  for (int i = 0; i < int(kSnapshotInterval); ++i) {
    ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(300 + i), Key(600 + i))).ok());
  }
  const uint64_t live_epoch = system.epoch();

  auto options_rb = DurableOptions<SaeSystem>(crypto::HashScheme::kSha1,
                                              rollback_fs.get(), "/db");
  auto rolled_back = SaeSystem::Recover(options_rb);
  ASSERT_TRUE(rolled_back.ok()) << rolled_back.status().message();
  ASSERT_LT(rolled_back.value()->epoch(), live_epoch);

  // The rolled-back SP answers self-consistently (its own epoch, its own
  // token) — only the freshness gate can catch it, and it must.
  auto outcome = rolled_back.value()->Query(kMinKey, kMaxKey);
  ASSERT_TRUE(outcome.ok());
  Status verdict = core::Client::VerifyAnswer(
      outcome.value().request, outcome.value().answer,
      outcome.value().results, outcome.value().vt,
      outcome.value().claimed_epoch, live_epoch, codec,
      crypto::HashScheme::kSha1);
  EXPECT_EQ(verdict.code(), StatusCode::kStaleEpoch) << verdict.message();
}

TEST(RollbackAdversary, TomClientRejectsSnapshotRollback) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  auto options = DurableOptions<TomSystem>(crypto::HashScheme::kSha1, &fs,
                                           "/db");
  TomSystem system(options);
  ASSERT_TRUE(system.Load(SeedDataset(codec, 20)).ok());
  for (int i = 0; i < int(kSnapshotInterval); ++i) {
    ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(200 + i), Key(500 + i))).ok());
  }
  std::unique_ptr<FaultFs> rollback_fs = fs.Clone();
  for (int i = 0; i < int(kSnapshotInterval); ++i) {
    ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(300 + i), Key(600 + i))).ok());
  }
  const uint64_t live_epoch = system.epoch();

  auto options_rb = DurableOptions<TomSystem>(crypto::HashScheme::kSha1,
                                              rollback_fs.get(), "/db");
  auto rolled_back = TomSystem::Recover(options_rb);
  ASSERT_TRUE(rolled_back.ok()) << rolled_back.status().message();
  ASSERT_LT(rolled_back.value()->epoch(), live_epoch);

  auto outcome = rolled_back.value()->Query(kMinKey, kMaxKey);
  ASSERT_TRUE(outcome.ok());
  // The rolled-back signature IS valid for its own epoch; freshness is the
  // only defense, exactly as the paper's epoch-stamping argument says.
  Status verdict = core::TomClient::VerifyAnswer(
      outcome.value().request, outcome.value().answer,
      outcome.value().results, outcome.value().vo,
      rolled_back.value()->owner().public_key(), codec,
      crypto::HashScheme::kSha1, live_epoch);
  EXPECT_EQ(verdict.code(), StatusCode::kStaleEpoch) << verdict.message();
}

// --- misc recovery semantics -------------------------------------------------

TEST(Recovery, FailedUpdateIsRetractedFromTheWal) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  SaeSystem system(
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db"));
  ASSERT_TRUE(system.Load(SeedDataset(codec, 5)).ok());
  const uint64_t wal_before = system.durability()->wal_bytes();
  // Duplicate insert and missing delete are rejected BEFORE logging, with
  // the same error text durability-off code paths produce.
  Status duplicate = system.Insert(codec.MakeRecord(RecordId(1), 999));
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(duplicate.message(), "record id already present");
  Status missing = system.Delete(RecordId(777));
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_EQ(missing.message(), "no record with this id");
  EXPECT_EQ(system.durability()->wal_bytes(), wal_before);
  // And the rejected ops are invisible to recovery.
  fs.DropVolatile();
  auto recovered = SaeSystem::Recover(
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db"));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value()->epoch(), 1u);
}

TEST(Recovery, ModelAndConfigMismatchesAreRejected) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  {
    SaeSystem system(
        DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db"));
    ASSERT_TRUE(system.Load(SeedDataset(codec, 5)).ok());
  }
  fs.DropVolatile();
  // A TOM system must refuse an SAE directory...
  auto wrong_model = TomSystem::Recover(
      DurableOptions<TomSystem>(crypto::HashScheme::kSha1, &fs, "/db"));
  EXPECT_EQ(wrong_model.status().code(), StatusCode::kCorruption);
  // ...and a mismatched hash scheme is caught before any replay.
  auto wrong_scheme = SaeSystem::Recover(DurableOptions<SaeSystem>(
      crypto::HashScheme::kSha256Trunc, &fs, "/db"));
  EXPECT_EQ(wrong_scheme.status().code(), StatusCode::kCorruption);
}

TEST(Recovery, ShardedSystemRecoversEveryShardAndItsDirectory) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  core::ShardedSaeSystem::Options options;
  options.base =
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db");
  core::ShardRouter router({100, 200});  // 3 shards
  const std::vector<Op> ops = {
      {true, 500, 50}, {true, 501, 150}, {true, 502, 250}, {false, 2, 0}};
  uint64_t crash_after;
  {
    core::ShardedSaeSystem system(router, options);
    ASSERT_TRUE(system.Load(SeedDataset(codec, 18)).ok());
    for (const Op& op : ops) {
      ASSERT_TRUE(ApplyOp(&system, op, codec).ok());
    }
    crash_after = fs.sync_points();
  }
  // Crash mid-flight in a later, longer run: the extra updates past the
  // imaged state vanish, the ones above survive per shard.
  fs.DropVolatile();
  auto recovered = core::ShardedSaeSystem::Recover(router, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  ASSERT_GT(crash_after, 0u);
  core::ShardedSaeSystem& system = *recovered.value();

  auto outcome = system.Query(kMinKey, kMaxKey);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().verification.ok())
      << outcome.value().verification.message();
  // All three inserts and the delete survived into the right shards.
  std::vector<RecordId> ids;
  for (const Record& record : outcome.value().results) ids.push_back(record.id);
  EXPECT_NE(std::find(ids.begin(), ids.end(), RecordId(500)), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), RecordId(501)), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), RecordId(502)), ids.end());
  EXPECT_EQ(std::find(ids.begin(), ids.end(), RecordId(2)), ids.end());
  // The rebuilt directory routes deletes: removing a recovered record
  // works without re-listing the dataset.
  EXPECT_TRUE(system.Delete(RecordId(501)).ok());
}

}  // namespace
}  // namespace sae
