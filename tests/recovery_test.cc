// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Crash-recovery proofs for the durability subsystem (core/durability.h,
// storage/{wal,snapshot,fault_fs}.h). The centerpiece is an exhaustive
// crash-point matrix: a deterministic workload runs once crash-free to
// count its durability barriers, then re-runs once per barrier k with
// storage::FaultFs armed to fail exactly the k-th sync point; after every
// simulated power loss the system must recover to a state that is
//   (a) epoch-sound   — the recovered epoch is provable and published,
//   (b) verifiable    — a full sweep of verifying queries accepts,
//   (c) prefix-exact  — differentially equal to a never-crashed twin that
//       applied exactly the updates whose WAL records became durable.
// The matrix runs in BOTH write-path configurations: the delta-chain mode
// (delta snapshots + WAL group commit + background checkpointing, the
// default) and the legacy full-snapshot mode (everything off, the PR 9
// pipeline) — every barrier of either pipeline, including the ones inside
// a background checkpoint write, is a crash point. On top of the matrix:
// a WAL-corruption fuzzer (torn tails, bit flips, lying length prefixes),
// snapshot atomicity/fallback checks including a corrupt middle delta
// link, the rollback adversary (an SP restored from an older durable
// chain is rejected by the unmodified client freshness gate as
// kStaleEpoch), and a concurrency suite driving many writers through the
// group-commit pipeline (also the TSan CI target).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/sharded_system.h"
#include "core/system.h"
#include "storage/fault_fs.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace sae {
namespace {

using core::DurabilityManager;
using core::DurabilityStats;
using core::SaeSystem;
using core::SnapshotState;
using core::TomSystem;
using core::WalUpdate;
using storage::FaultFs;
using storage::Key;
using storage::Record;
using storage::RecordCodec;
using storage::RecordId;

constexpr Key kMinKey = 0;
constexpr Key kMaxKey = ~Key{0};
constexpr size_t kRecordSize = 64;  // small records keep the matrix fast
constexpr uint64_t kSnapshotInterval = 4;

// Deterministic pseudo-randomness for the fuzzer (no real entropy: every
// failure must replay exactly).
uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 33;
}

// Delta-link file name, as storage/snapshot.cc writes it.
std::string DeltaFileName(uint64_t base, uint64_t epoch) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "delta-%020llu-%020llu",
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(epoch));
  return buf;
}

// `legacy` restores the PR 9 write path: full snapshots only, one fsync
// per update under the writer lock, checkpoints inline. The default is
// the delta-chain pipeline. full_snapshot_every=3 makes the deterministic
// schedule cross a compaction (delta, delta, full) inside the matrix.
template <typename System>
typename System::Options DurableOptions(crypto::HashScheme scheme,
                                        storage::Vfs* vfs,
                                        const std::string& dir,
                                        bool legacy = false) {
  typename System::Options options;
  options.record_size = kRecordSize;
  options.scheme = scheme;
  options.durability.enabled = true;
  options.durability.dir = dir;
  options.durability.vfs = vfs;
  options.durability.snapshot_interval = kSnapshotInterval;
  options.durability.full_snapshot_every = 3;
  if (legacy) {
    options.durability.delta_snapshots = false;
    options.durability.wal_group_commit = false;
    options.durability.background_checkpoint = false;
  }
  return options;
}

std::vector<Record> SeedDataset(const RecordCodec& codec, size_t n) {
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(codec.MakeRecord(RecordId(i + 1), Key(i * 10 + 5)));
  }
  return records;
}

// The deterministic update schedule driven against every system in this
// file: a mix of inserts and deletes, long enough to cross several
// snapshot boundaries at kSnapshotInterval.
struct Op {
  bool insert;
  RecordId id;
  Key key;
};

std::vector<Op> UpdateSchedule() {
  std::vector<Op> ops;
  for (int i = 0; i < 10; ++i) {
    ops.push_back({true, RecordId(100 + i), Key(40 + 7 * i)});
    if (i % 3 == 2) ops.push_back({false, RecordId(i + 1), 0});
  }
  return ops;  // 13 updates -> epochs 2..14, checkpoints at 5, 9, 13
}

template <typename System>
Status ApplyOp(System* system, const Op& op, const RecordCodec& codec) {
  return op.insert ? system->Insert(codec.MakeRecord(op.id, op.key))
                   : system->Delete(op.id);
}

// Runs load + schedule, draining the checkpoint queue after every update
// so the barrier sequence is deterministic and a background-checkpoint
// failure surfaces at a fixed point. Stops at the first storage failure
// (the armed crash) and reports how many updates SUCCEEDED before it.
template <typename System>
Status RunWorkload(System* system, const RecordCodec& codec,
                   size_t* updates_applied) {
  *updates_applied = 0;
  SAE_RETURN_NOT_OK(system->Load(SeedDataset(codec, 30)));
  for (const Op& op : UpdateSchedule()) {
    SAE_RETURN_NOT_OK(ApplyOp(system, op, codec));
    ++*updates_applied;
    SAE_RETURN_NOT_OK(system->WaitForCheckpoints());
  }
  return Status::OK();
}

// Builds the never-crashed twin holding the first `updates` schedule
// entries (pure in-memory, no durability).
template <typename System>
std::unique_ptr<System> BuildTwin(crypto::HashScheme scheme, size_t updates,
                                  const RecordCodec& codec) {
  typename System::Options options;
  options.record_size = kRecordSize;
  options.scheme = scheme;
  auto twin = std::make_unique<System>(options);
  EXPECT_TRUE(twin->Load(SeedDataset(codec, 30)).ok());
  std::vector<Op> ops = UpdateSchedule();
  for (size_t i = 0; i < updates; ++i) {
    EXPECT_TRUE(ApplyOp(twin.get(), ops[i], codec).ok());
  }
  return twin;
}

// The verifying sweep every recovered system must pass: scans and
// aggregates across the key space, each accepted by the client.
template <typename System>
void VerifySweep(System* system) {
  const dbms::QueryRequest requests[] = {
      dbms::QueryRequest::Scan(kMinKey, kMaxKey),
      dbms::QueryRequest::Scan(40, 120),
      dbms::QueryRequest::Count(kMinKey, kMaxKey),
      dbms::QueryRequest::Sum(0, 200),
      dbms::QueryRequest::Min(50, 300),
      dbms::QueryRequest::Max(kMinKey, kMaxKey),
  };
  for (const dbms::QueryRequest& request : requests) {
    auto outcome = system->Query(request);
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_TRUE(outcome.value().verification.ok())
        << outcome.value().verification.message();
  }
}

template <typename System>
std::vector<Record> FullScan(System* system) {
  auto outcome = system->Query(kMinKey, kMaxKey);
  EXPECT_TRUE(outcome.ok());
  return outcome.ok() ? outcome.value().results : std::vector<Record>{};
}

// --- the crash-point matrix --------------------------------------------------

template <typename System>
void RunCrashMatrix(crypto::HashScheme scheme, bool legacy) {
  RecordCodec codec(kRecordSize);

  // Pass 1: crash-free run counts the barriers and fixes the final state.
  FaultFs clean_fs;
  size_t total_updates = 0;
  {
    auto system = std::make_unique<System>(
        DurableOptions<System>(scheme, &clean_fs, "/db", legacy));
    size_t applied = 0;
    ASSERT_TRUE(RunWorkload(system.get(), codec, &applied).ok());
    total_updates = applied;
  }
  const uint64_t sync_points = clean_fs.sync_points();
  ASSERT_GT(sync_points, kSnapshotInterval);  // sanity: barriers happened

  // Pass 2: one run per barrier. Between two adjacent barriers every
  // durable state is identical, so this enumerates ALL distinguishable
  // crash outcomes of the workload — WAL commits, checkpoint temp syncs
  // and renames (mid-checkpoint crashes), full and delta alike.
  for (uint64_t k = 1; k <= sync_points; ++k) {
    SCOPED_TRACE("crash at sync point " + std::to_string(k) + ", scheme " +
                 std::to_string(int(scheme)) +
                 (legacy ? ", legacy" : ", delta"));
    FaultFs fs;
    fs.CrashAtSyncPoint(k);
    size_t applied = 0;
    {
      auto system = std::make_unique<System>(
          DurableOptions<System>(scheme, &fs, "/db", legacy));
      Status st = RunWorkload(system.get(), codec, &applied);
      ASSERT_FALSE(st.ok());  // the armed crash must have fired
      ASSERT_TRUE(fs.crashed());
    }
    fs.DropVolatile();  // power loss: volatile bytes are gone

    auto recovered =
        System::Recover(DurableOptions<System>(scheme, &fs, "/db", legacy));
    if (!recovered.ok()) {
      // Only legitimate before the epoch-1 baseline snapshot is durable:
      // its temp-file sync is barrier 1 and its rename is barrier 2, so
      // from barrier 3 on recovery must always succeed.
      ASSERT_EQ(recovered.status().code(), StatusCode::kNotFound);
      ASSERT_LE(k, 2u);
      continue;
    }
    System& system = *recovered.value();

    // (a) epoch-sound: exactly the updates whose WAL records became
    // durable are recovered. An update's WAL sync is its only barrier
    // between epochs (checkpoints drain before the next update), so the
    // recovered epoch determines the prefix.
    const uint64_t epoch = system.epoch();
    ASSERT_GE(epoch, 1u);
    ASSERT_LE(epoch, 1 + total_updates);
    // The crash lost at most the single in-flight update.
    ASSERT_GE(epoch, 1 + applied);
    ASSERT_LE(epoch, 1 + applied + 1);

    // (b) verifiable as live traffic.
    VerifySweep(&system);

    // (c) differentially equal to the never-crashed twin of that prefix.
    auto twin = BuildTwin<System>(scheme, size_t(epoch - 1), codec);
    EXPECT_EQ(twin->epoch(), epoch);
    EXPECT_EQ(FullScan(twin.get()), FullScan(&system));
    if constexpr (std::is_same_v<System, TomSystem>) {
      EXPECT_EQ(twin->owner().signature(), system.owner().signature());
    }

    // The recovered system keeps working: one more durable update.
    ASSERT_TRUE(
        system.Insert(codec.MakeRecord(RecordId(9000 + k), Key(777))).ok());
    EXPECT_EQ(system.epoch(), epoch + 1);
    ASSERT_TRUE(system.WaitForCheckpoints().ok());
  }
}

TEST(RecoveryMatrix, SaeSha1EveryCrashPointRecovers) {
  RunCrashMatrix<SaeSystem>(crypto::HashScheme::kSha1, /*legacy=*/false);
}

TEST(RecoveryMatrix, SaeSha256EveryCrashPointRecovers) {
  RunCrashMatrix<SaeSystem>(crypto::HashScheme::kSha256Trunc,
                            /*legacy=*/false);
}

TEST(RecoveryMatrix, TomSha1EveryCrashPointRecovers) {
  RunCrashMatrix<TomSystem>(crypto::HashScheme::kSha1, /*legacy=*/false);
}

TEST(RecoveryMatrix, TomSha256EveryCrashPointRecovers) {
  RunCrashMatrix<TomSystem>(crypto::HashScheme::kSha256Trunc,
                            /*legacy=*/false);
}

TEST(RecoveryMatrix, SaeSha1LegacyFullSnapshotsEveryCrashPointRecovers) {
  RunCrashMatrix<SaeSystem>(crypto::HashScheme::kSha1, /*legacy=*/true);
}

TEST(RecoveryMatrix, SaeSha256LegacyFullSnapshotsEveryCrashPointRecovers) {
  RunCrashMatrix<SaeSystem>(crypto::HashScheme::kSha256Trunc,
                            /*legacy=*/true);
}

TEST(RecoveryMatrix, TomSha1LegacyFullSnapshotsEveryCrashPointRecovers) {
  RunCrashMatrix<TomSystem>(crypto::HashScheme::kSha1, /*legacy=*/true);
}

TEST(RecoveryMatrix, TomSha256LegacyFullSnapshotsEveryCrashPointRecovers) {
  RunCrashMatrix<TomSystem>(crypto::HashScheme::kSha256Trunc,
                            /*legacy=*/true);
}

// --- WAL fuzzing -------------------------------------------------------------

std::vector<std::vector<uint8_t>> SampleWalPayloads(size_t n) {
  std::vector<std::vector<uint8_t>> payloads;
  RecordCodec codec(kRecordSize);
  for (size_t i = 0; i < n; ++i) {
    WalUpdate update;
    if (i % 3 == 0) {
      update.op = WalUpdate::kDelete;
      update.id = RecordId(i);
    } else {
      update.op = WalUpdate::kInsert;
      update.record = codec.MakeRecord(RecordId(i), Key(i * 13));
    }
    update.epoch = i + 2;
    payloads.push_back(EncodeWalUpdate(update));
  }
  return payloads;
}

// First (and only) segment of a log written under `dir`.
std::string FirstSegmentPath(const std::string& dir) {
  return dir + "/" + storage::WalSegmentName(1);
}

// Writes `payloads` as a well-formed single-segment log under `dir`.
void WriteWal(FaultFs* fs, const std::string& dir,
              const std::vector<std::vector<uint8_t>>& payloads) {
  auto wal = storage::WriteAheadLog::Open(fs, dir).ValueOrDie();
  for (const auto& payload : payloads) {
    ASSERT_TRUE(wal->Append(payload).ok());
  }
}

// Every mutation of a valid log must scan to a clean PREFIX of the
// original records: never an error, never a record past the mutation.
void ExpectScanIsPrefix(FaultFs* fs, const std::string& path,
                        const std::vector<std::vector<uint8_t>>& originals) {
  auto scanned = storage::ReadLog(fs, path);
  ASSERT_TRUE(scanned.ok()) << scanned.status().message();
  const auto& records = scanned.value().records;
  ASSERT_LE(records.size(), originals.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], originals[i]) << "record " << i << " mutated";
  }
}

TEST(WalFuzz, TornTailsTruncateToRecordBoundary) {
  FaultFs fs;
  auto payloads = SampleWalPayloads(12);
  WriteWal(&fs, "/db", payloads);
  const std::string path = FirstSegmentPath("/db");
  auto file = fs.Open(path, false).ValueOrDie();
  const uint64_t size = file->Size().ValueOrDie();

  // Cut the log at EVERY byte length; the scan must recover the longest
  // record prefix that still fits.
  std::vector<uint8_t> image(size);
  ASSERT_EQ(file->ReadAt(0, image.data(), size).ValueOrDie(), size);
  for (uint64_t cut = 0; cut <= size; ++cut) {
    ASSERT_TRUE(file->Truncate(cut).ok());
    auto scanned = storage::ReadLog(&fs, path);
    ASSERT_TRUE(scanned.ok());
    uint64_t valid = scanned.value().valid_bytes;
    ASSERT_LE(valid, cut);
    EXPECT_EQ(scanned.value().torn_tail, valid < cut);
    ExpectScanIsPrefix(&fs, path, payloads);
    // restore
    ASSERT_TRUE(file->Truncate(0).ok());
    ASSERT_TRUE(file->WriteAt(0, image.data(), size).ok());
  }
}

TEST(WalFuzz, BitFlipsNeverCrashAndNeverOverReplay) {
  FaultFs fs;
  auto payloads = SampleWalPayloads(12);
  WriteWal(&fs, "/db", payloads);
  const std::string path = FirstSegmentPath("/db");
  auto file = fs.Open(path, false).ValueOrDie();
  const uint64_t size = file->Size().ValueOrDie();
  std::vector<uint8_t> image(size);
  ASSERT_EQ(file->ReadAt(0, image.data(), size).ValueOrDie(), size);

  uint64_t rng = 0x5AEDB;
  for (int trial = 0; trial < 500; ++trial) {
    uint64_t pos = NextRand(&rng) % size;
    uint8_t flipped = image[pos] ^ uint8_t(1u << (NextRand(&rng) % 8));
    ASSERT_TRUE(file->WriteAt(pos, &flipped, 1).ok());
    ExpectScanIsPrefix(&fs, path, payloads);
    ASSERT_TRUE(file->WriteAt(pos, &image[pos], 1).ok());  // restore
  }
}

TEST(WalFuzz, LyingLengthPrefixesEndTheValidPrefix) {
  FaultFs fs;
  auto payloads = SampleWalPayloads(8);
  WriteWal(&fs, "/db", payloads);
  const std::string path = FirstSegmentPath("/db");
  auto file = fs.Open(path, false).ValueOrDie();
  const uint64_t size = file->Size().ValueOrDie();
  std::vector<uint8_t> image(size);
  ASSERT_EQ(file->ReadAt(0, image.data(), size).ValueOrDie(), size);

  // Overwrite each record's length prefix with adversarial values: huge
  // (would allocate GiBs if trusted), just-past-EOF, and maximal.
  const uint32_t lies[] = {storage::kMaxWalPayload + 1, uint32_t(size),
                           0x7FFFFFFFu, 0xFFFFFFFFu};
  uint64_t offset = 0;
  for (const auto& payload : payloads) {
    for (uint32_t lie : lies) {
      uint8_t enc[4];
      EncodeU32(enc, lie);
      ASSERT_TRUE(file->WriteAt(offset, enc, 4).ok());
      ExpectScanIsPrefix(&fs, path, payloads);
      ASSERT_TRUE(file->WriteAt(offset, image.data() + offset, 4).ok());
    }
    offset += storage::kWalRecordHeader + payload.size();
  }
}

TEST(WalFuzz, CrcValidGarbageRecordEndsReplayAtOpen) {
  // A record with a correct checksum but an undecodable payload cannot
  // come from the stage path; DurabilityManager::Open must cut the log
  // there.
  FaultFs fs;
  auto payloads = SampleWalPayloads(4);
  const std::vector<uint8_t> garbage = {0x7F, 0x00, 0x01};  // unknown op
  WriteWal(&fs, "/db", payloads);
  {
    auto wal = storage::WriteAheadLog::Open(&fs, "/db").ValueOrDie();
    ASSERT_TRUE(wal->Append(garbage).ok());
  }
  core::DurabilityOptions options;
  options.enabled = true;
  options.dir = "/db";
  options.vfs = &fs;
  auto mgr = DurabilityManager::Open(options);
  ASSERT_TRUE(mgr.ok()) << mgr.status().message();
  EXPECT_EQ(mgr.value()->recovered().wal_tail.size(), payloads.size());
  EXPECT_TRUE(mgr.value()->recovered().wal_truncated);
  // The cut is durable: a raw re-scan no longer sees the garbage bytes.
  auto rescanned = storage::ReadLog(&fs, FirstSegmentPath("/db"));
  ASSERT_TRUE(rescanned.ok());
  EXPECT_EQ(rescanned.value().records.size(), payloads.size());
  EXPECT_FALSE(rescanned.value().torn_tail);
}

TEST(WalSegments, RotateSealsAndDropRemovesOnlySealedSegments) {
  FaultFs fs;
  auto payloads = SampleWalPayloads(6);
  auto wal = storage::WriteAheadLog::Open(&fs, "/db").ValueOrDie();
  for (size_t i = 0; i < 3; ++i) ASSERT_TRUE(wal->Append(payloads[i]).ok());
  auto sealed = wal->Rotate();
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed.value(), 1u);
  for (size_t i = 3; i < 6; ++i) ASSERT_TRUE(wal->Append(payloads[i]).ok());
  ASSERT_TRUE(fs.Exists(FirstSegmentPath("/db")));
  ASSERT_TRUE(fs.Exists("/db/" + storage::WalSegmentName(2)));
  // Dropping through the sealed sequence removes segment 1 but never the
  // active segment.
  ASSERT_TRUE(wal->DropSegmentsThrough(sealed.value()).ok());
  EXPECT_FALSE(fs.Exists(FirstSegmentPath("/db")));
  EXPECT_TRUE(fs.Exists("/db/" + storage::WalSegmentName(2)));
  // Reopen: the surviving records are exactly the post-rotation suffix.
  wal.reset();
  storage::WalContents contents;
  auto reopened = storage::WriteAheadLog::Open(&fs, "/db", &contents);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(contents.records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(contents.records[i], payloads[3 + i]);
  }
}

// --- snapshot atomicity and delta chains -------------------------------------

TEST(SnapshotStore, CrashAtEitherBarrierLeavesPreviousSnapshotIntact) {
  const std::vector<uint8_t> payload_a(100, 0xAA);
  const std::vector<uint8_t> payload_b(100, 0xBB);
  for (uint64_t k = 1; k <= 2; ++k) {  // temp sync, rename
    FaultFs fs;
    storage::SnapshotStore store(&fs, "/snaps");
    ASSERT_TRUE(store.Write(7, payload_a).ok());
    fs.CrashAtSyncPoint(k);
    ASSERT_FALSE(store.Write(8, payload_b).ok());
    fs.DropVolatile();
    auto loaded = store.LoadLatest();
    ASSERT_TRUE(loaded.ok()) << "crash at barrier " << k;
    EXPECT_EQ(loaded.value().epoch, 7u);
    EXPECT_EQ(loaded.value().payload, payload_a);
    EXPECT_FALSE(loaded.value().fell_back);
  }
}

TEST(SnapshotStore, SkippedTempSyncWouldTearTheSnapshot) {
  // The FaultFs rename models the real sharp edge: content renamed without
  // a prior sync has no durable image. This test pins the model itself, so
  // the matrix above genuinely punishes a protocol that dropped the sync.
  FaultFs fs;
  auto file = fs.Open("/snaps/snap.tmp", true).ValueOrDie();
  const uint8_t byte = 1;
  ASSERT_TRUE(file->WriteAt(0, &byte, 1).ok());
  ASSERT_TRUE(fs.Rename("/snaps/snap.tmp",
                        "/snaps/snap-00000000000000000009").ok());
  fs.DropVolatile();
  storage::SnapshotStore store(&fs, "/snaps");
  EXPECT_EQ(store.LoadLatest().status().code(), StatusCode::kNotFound);
}

TEST(SnapshotStore, CorruptNewestFallsBackToPreviousValidSnapshot) {
  FaultFs fs;
  storage::SnapshotStore store(&fs, "/snaps");
  ASSERT_TRUE(store.Write(3, std::vector<uint8_t>(40, 0x33)).ok());
  ASSERT_TRUE(store.Write(4, std::vector<uint8_t>(40, 0x44)).ok());
  // Flip one payload byte of the newest file: its CRC fails, and the
  // previous snapshot must answer instead.
  auto file = fs.Open("/snaps/snap-00000000000000000004", false).ValueOrDie();
  uint8_t corrupted = 0x45;
  ASSERT_TRUE(file->WriteAt(30, &corrupted, 1).ok());
  auto loaded = store.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().epoch, 3u);
  EXPECT_TRUE(loaded.value().fell_back);
  EXPECT_EQ(loaded.value().payload, std::vector<uint8_t>(40, 0x33));
}

TEST(SnapshotStore, LoadChainComposesBasePlusLinkedDeltas) {
  FaultFs fs;
  storage::SnapshotStore store(&fs, "/snaps");
  ASSERT_TRUE(store.Write(2, {0x10}).ok());
  ASSERT_TRUE(store.WriteDelta(2, 5, {0x25}).ok());
  ASSERT_TRUE(store.WriteDelta(5, 9, {0x59}).ok());
  auto chain = store.LoadChain();
  ASSERT_TRUE(chain.ok()) << chain.status().message();
  EXPECT_EQ(chain.value().base_epoch, 2u);
  EXPECT_EQ(chain.value().base_payload, std::vector<uint8_t>{0x10});
  ASSERT_EQ(chain.value().deltas.size(), 2u);
  EXPECT_EQ(chain.value().deltas[0].epoch, 5u);
  EXPECT_EQ(chain.value().deltas[1].epoch, 9u);
  EXPECT_EQ(chain.value().deltas[1].payload, std::vector<uint8_t>{0x59});
  EXPECT_FALSE(chain.value().fell_back);
}

TEST(SnapshotStore, CorruptMiddleDeltaEndsTheChainAtTheBreak) {
  FaultFs fs;
  storage::SnapshotStore store(&fs, "/snaps");
  ASSERT_TRUE(store.Write(2, {0x10}).ok());
  ASSERT_TRUE(store.WriteDelta(2, 5, {0x25}).ok());
  ASSERT_TRUE(store.WriteDelta(5, 9, {0x59}).ok());
  ASSERT_TRUE(store.WriteDelta(9, 12, {0x9C}).ok());
  // Corrupt the MIDDLE link: composition must stop before it — the valid
  // tail past the break is unreachable (its base state cannot be built).
  auto file =
      fs.Open("/snaps/" + DeltaFileName(5, 9), false).ValueOrDie();
  uint8_t corrupted = 0xFF;
  ASSERT_TRUE(file->WriteAt(28, &corrupted, 1).ok());
  auto chain = store.LoadChain();
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain.value().base_epoch, 2u);
  ASSERT_EQ(chain.value().deltas.size(), 1u);
  EXPECT_EQ(chain.value().deltas[0].epoch, 5u);
  EXPECT_TRUE(chain.value().fell_back);
}

TEST(SnapshotStore, GcKeepsTheNewestTwoChains) {
  FaultFs fs;
  storage::SnapshotStore store(&fs, "/snaps", 2);
  ASSERT_TRUE(store.Write(1, {1}).ok());
  ASSERT_TRUE(store.WriteDelta(1, 2, {2}).ok());
  ASSERT_TRUE(store.WriteDelta(2, 3, {3}).ok());
  ASSERT_TRUE(store.Write(4, {4}).ok());
  ASSERT_TRUE(store.WriteDelta(4, 5, {5}).ok());
  ASSERT_TRUE(store.Write(6, {6}).ok());
  // Keeping two chains means: the two newest fulls survive, and every
  // delta belonging to an older chain (epoch below the older kept full)
  // is garbage.
  auto epochs = store.ListEpochs().ValueOrDie();
  EXPECT_EQ(epochs, (std::vector<uint64_t>{4, 6}));
  auto links = store.ListDeltaLinks().ValueOrDie();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].first, 4u);
  EXPECT_EQ(links[0].second, 5u);
}

TEST(SnapshotStore, SelfLinkedDeltaCannotStallTheChainWalk) {
  // Regression: a delta whose base equals its epoch (on-disk adversary or
  // buggy writer — header matches the name, CRC valid) used to self-link:
  // the walk accepted it without advancing the cursor and looped forever.
  // It must be skipped, and the rest of the chain still composes.
  FaultFs fs;
  storage::SnapshotStore store(&fs, "/snaps");
  ASSERT_TRUE(store.Write(2, {0x10}).ok());
  ASSERT_TRUE(store.WriteDelta(2, 5, {0x25}).ok());
  ASSERT_TRUE(store.WriteDelta(5, 5, {0x55}).ok());  // self-link mid-chain
  ASSERT_TRUE(store.WriteDelta(5, 9, {0x59}).ok());
  auto chain = store.LoadChain();
  ASSERT_TRUE(chain.ok()) << chain.status().message();
  EXPECT_EQ(chain.value().base_epoch, 2u);
  ASSERT_EQ(chain.value().deltas.size(), 2u);
  EXPECT_EQ(chain.value().deltas[0].epoch, 5u);
  EXPECT_EQ(chain.value().deltas[1].epoch, 9u);

  // A lone self-link sitting right on the base (the original infinite
  // loop) terminates too, leaving just the base.
  FaultFs fs2;
  storage::SnapshotStore store2(&fs2, "/snaps");
  ASSERT_TRUE(store2.Write(2, {0x10}).ok());
  ASSERT_TRUE(store2.WriteDelta(2, 2, {0x22}).ok());
  auto lone = store2.LoadChain();
  ASSERT_TRUE(lone.ok()) << lone.status().message();
  EXPECT_EQ(lone.value().base_epoch, 2u);
  EXPECT_TRUE(lone.value().deltas.empty());
  // And ReadDelta refuses a non-advancing link outright.
  EXPECT_EQ(store2.ReadDelta(2, 2).status().code(), StatusCode::kCorruption);
}

// --- delta-chain recovery semantics ------------------------------------------

TEST(Recovery, CrashMidBackgroundCheckpointLosesNothing) {
  // Arm the crash inside the checkpoint write itself (temp sync, then
  // rename): the update that triggered the checkpoint is already durable
  // in the retained WAL segments, so recovery from the PREVIOUS chain
  // replays everything.
  RecordCodec codec(kRecordSize);
  for (uint64_t extra = 1; extra <= 2; ++extra) {  // temp sync, rename
    FaultFs fs;
    auto options =
        DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db");
    SaeSystem system(options);
    ASSERT_TRUE(system.Load(SeedDataset(codec, 12)).ok());
    for (int i = 0; i < int(kSnapshotInterval) - 1; ++i) {
      ASSERT_TRUE(
          system.Insert(codec.MakeRecord(RecordId(200 + i), Key(500 + i)))
              .ok());
      ASSERT_TRUE(system.WaitForCheckpoints().ok());
    }
    // Counting from arming: the next insert's WAL commit is barrier 1,
    // its cadence checkpoint writes at barrier 2 (temp sync) and 3
    // (rename).
    fs.CrashAtSyncPoint(1 + extra);
    ASSERT_TRUE(
        system.Insert(codec.MakeRecord(RecordId(299), Key(599))).ok());
    EXPECT_FALSE(system.WaitForCheckpoints().ok());
    ASSERT_TRUE(fs.crashed());
    fs.DropVolatile();

    auto recovered = SaeSystem::Recover(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    // Nothing lost: all kSnapshotInterval updates replay out of the
    // baseline chain plus the retained WAL segments.
    EXPECT_EQ(recovered.value()->epoch(), 1 + kSnapshotInterval);
    VerifySweep(recovered.value().get());
  }
}

TEST(Recovery, CorruptMiddleDeltaFallsBackToTheValidChainPrefix) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  auto options =
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db");
  options.durability.snapshot_interval = 2;
  options.durability.full_snapshot_every = 100;  // never compact
  SaeSystem system(options);
  ASSERT_TRUE(system.Load(SeedDataset(codec, 10)).ok());
  for (int i = 0; i < 8; ++i) {  // deltas at epochs 3, 5, 7, 9
    ASSERT_TRUE(
        system.Insert(codec.MakeRecord(RecordId(300 + i), Key(700 + i)))
            .ok());
    ASSERT_TRUE(system.WaitForCheckpoints().ok());
  }
  // Power loss first, THEN corrupt the durable image of the delta linking
  // epoch 3 -> 5 (corrupting before the drop would revert the flipped
  // byte along with every other volatile write). Composition must stop at
  // epoch 3, and the WAL for epochs past the later checkpoints is gone —
  // the degraded-mode contract is "an older but still provable epoch".
  fs.DropVolatile();
  auto file = fs.Open("/db/" + DeltaFileName(3, 5), false).ValueOrDie();
  uint8_t corrupted = 0xFF;
  ASSERT_TRUE(file->WriteAt(29, &corrupted, 1).ok());

  auto recovered = SaeSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  SaeSystem& rec = *recovered.value();
  EXPECT_EQ(rec.epoch(), 3u);
  EXPECT_TRUE(rec.durability()->recovered().snapshot_fell_back);
  EXPECT_EQ(rec.durability()->recovered().chain_deltas, 1u);
  VerifySweep(&rec);
  // Differentially equal to a twin that applied exactly 2 updates.
  typename SaeSystem::Options twin_options;
  twin_options.record_size = kRecordSize;
  SaeSystem twin(twin_options);
  ASSERT_TRUE(twin.Load(SeedDataset(codec, 10)).ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        twin.Insert(codec.MakeRecord(RecordId(300 + i), Key(700 + i))).ok());
  }
  EXPECT_EQ(FullScan(&twin), FullScan(&rec));
  // The fallen-back system keeps working and re-chains from its tail.
  ASSERT_TRUE(rec.Insert(codec.MakeRecord(RecordId(400), Key(800))).ok());
  ASSERT_TRUE(rec.Insert(codec.MakeRecord(RecordId(401), Key(801))).ok());
  ASSERT_TRUE(rec.WaitForCheckpoints().ok());
  EXPECT_EQ(rec.epoch(), 5u);
}

TEST(Recovery, DeltaChainRecoveryComposesAcrossCompaction) {
  // Run long enough that the chain compacts (full_snapshot_every=3) and
  // old chains are garbage-collected; recovery must compose the newest
  // chain and land on the live epoch.
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  auto options =
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db");
  uint64_t live_epoch = 0;
  {
    SaeSystem system(options);
    ASSERT_TRUE(system.Load(SeedDataset(codec, 10)).ok());
    for (int i = 0; i < 26; ++i) {
      ASSERT_TRUE(
          system.Insert(codec.MakeRecord(RecordId(500 + i), Key(40 + i)))
              .ok());
      ASSERT_TRUE(system.WaitForCheckpoints().ok());
    }
    live_epoch = system.epoch();
    DurabilityStats stats = system.durability_stats();
    EXPECT_GT(stats.checkpoints_full, 1u);  // compaction happened
    EXPECT_GT(stats.checkpoints_delta, stats.checkpoints_full);
  }
  fs.DropVolatile();
  auto recovered = SaeSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered.value()->epoch(), live_epoch);
  VerifySweep(recovered.value().get());
}

// --- rollback adversary ------------------------------------------------------

// An attacker restores the SP from an older (internally consistent,
// fully durable) disk state — here a recovered DELTA CHAIN, not just a
// full snapshot. Recovery itself succeeds: the state is genuine, just
// old. But the recovered epoch lags, and the unmodified client freshness
// gate rejects the served answers as kStaleEpoch.
TEST(RollbackAdversary, SaeClientRejectsSnapshotRollback) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  auto options = DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs,
                                           "/db");
  SaeSystem system(options);
  ASSERT_TRUE(system.Load(SeedDataset(codec, 20)).ok());
  for (int i = 0; i < int(kSnapshotInterval); ++i) {  // force a checkpoint
    ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(200 + i), Key(500 + i))).ok());
  }
  ASSERT_TRUE(system.WaitForCheckpoints().ok());
  // The attacker images the disk now...
  std::unique_ptr<FaultFs> rollback_fs = fs.Clone();
  // ...while the real system moves on.
  for (int i = 0; i < int(kSnapshotInterval); ++i) {
    ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(300 + i), Key(600 + i))).ok());
  }
  const uint64_t live_epoch = system.epoch();

  auto options_rb = DurableOptions<SaeSystem>(crypto::HashScheme::kSha1,
                                              rollback_fs.get(), "/db");
  auto rolled_back = SaeSystem::Recover(options_rb);
  ASSERT_TRUE(rolled_back.ok()) << rolled_back.status().message();
  ASSERT_LT(rolled_back.value()->epoch(), live_epoch);
  // The imaged state really was a delta chain, not a bare full snapshot.
  EXPECT_GE(rolled_back.value()->durability()->recovered().chain_deltas, 1u);

  // The rolled-back SP answers self-consistently (its own epoch, its own
  // token) — only the freshness gate can catch it, and it must.
  auto outcome = rolled_back.value()->Query(kMinKey, kMaxKey);
  ASSERT_TRUE(outcome.ok());
  Status verdict = core::Client::VerifyAnswer(
      outcome.value().request, outcome.value().answer,
      outcome.value().results, outcome.value().vt,
      outcome.value().claimed_epoch, live_epoch, codec,
      crypto::HashScheme::kSha1);
  EXPECT_EQ(verdict.code(), StatusCode::kStaleEpoch) << verdict.message();
}

TEST(RollbackAdversary, TomClientRejectsSnapshotRollback) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  auto options = DurableOptions<TomSystem>(crypto::HashScheme::kSha1, &fs,
                                           "/db");
  TomSystem system(options);
  ASSERT_TRUE(system.Load(SeedDataset(codec, 20)).ok());
  for (int i = 0; i < int(kSnapshotInterval); ++i) {
    ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(200 + i), Key(500 + i))).ok());
  }
  ASSERT_TRUE(system.WaitForCheckpoints().ok());
  std::unique_ptr<FaultFs> rollback_fs = fs.Clone();
  for (int i = 0; i < int(kSnapshotInterval); ++i) {
    ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(300 + i), Key(600 + i))).ok());
  }
  const uint64_t live_epoch = system.epoch();

  auto options_rb = DurableOptions<TomSystem>(crypto::HashScheme::kSha1,
                                              rollback_fs.get(), "/db");
  auto rolled_back = TomSystem::Recover(options_rb);
  ASSERT_TRUE(rolled_back.ok()) << rolled_back.status().message();
  ASSERT_LT(rolled_back.value()->epoch(), live_epoch);
  EXPECT_GE(rolled_back.value()->durability()->recovered().chain_deltas, 1u);

  auto outcome = rolled_back.value()->Query(kMinKey, kMaxKey);
  ASSERT_TRUE(outcome.ok());
  // The rolled-back signature IS valid for its own epoch; freshness is the
  // only defense, exactly as the paper's epoch-stamping argument says.
  Status verdict = core::TomClient::VerifyAnswer(
      outcome.value().request, outcome.value().answer,
      outcome.value().results, outcome.value().vo,
      rolled_back.value()->owner().public_key(), codec,
      crypto::HashScheme::kSha1, live_epoch);
  EXPECT_EQ(verdict.code(), StatusCode::kStaleEpoch) << verdict.message();
}

// --- misc recovery semantics -------------------------------------------------

TEST(Recovery, FailedUpdateIsRetractedFromTheWal) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  SaeSystem system(
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db"));
  ASSERT_TRUE(system.Load(SeedDataset(codec, 5)).ok());
  const uint64_t wal_before = system.durability()->wal_bytes();
  // Duplicate insert and missing delete are rejected BEFORE logging, with
  // the same error text durability-off code paths produce.
  Status duplicate = system.Insert(codec.MakeRecord(RecordId(1), 999));
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(duplicate.message(), "record id already present");
  Status missing = system.Delete(RecordId(777));
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_EQ(missing.message(), "no record with this id");
  EXPECT_EQ(system.durability()->wal_bytes(), wal_before);
  // And the rejected ops are invisible to recovery.
  fs.DropVolatile();
  auto recovered = SaeSystem::Recover(
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db"));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value()->epoch(), 1u);
}

TEST(Recovery, FailedUpdatesNeverAdvanceTheCheckpointCadence) {
  // Regression: a rejected update must not count toward the snapshot
  // interval — otherwise failed traffic would drag checkpoints forward
  // and the "checkpoint every N real changes" contract (and the delta
  // pending set) would drift.
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  SaeSystem system(
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db"));
  ASSERT_TRUE(system.Load(SeedDataset(codec, 5)).ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        system.Insert(codec.MakeRecord(RecordId(50 + i), Key(100 + i))).ok());
  }
  EXPECT_EQ(system.durability_stats().updates_since_checkpoint, 2u);
  // A burst of rejected updates, more than enough to cross the interval
  // if they (wrongly) counted.
  for (int i = 0; i < int(kSnapshotInterval) + 2; ++i) {
    EXPECT_FALSE(system.Insert(codec.MakeRecord(RecordId(1), 999)).ok());
    EXPECT_FALSE(system.Delete(RecordId(777)).ok());
  }
  DurabilityStats stats = system.durability_stats();
  EXPECT_EQ(stats.updates_since_checkpoint, 2u);
  EXPECT_EQ(stats.checkpoints_delta, 0u);
  // Two more real updates complete the interval: exactly now the cadence
  // fires.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        system.Insert(codec.MakeRecord(RecordId(60 + i), Key(200 + i))).ok());
  }
  ASSERT_TRUE(system.WaitForCheckpoints().ok());
  stats = system.durability_stats();
  EXPECT_EQ(stats.updates_since_checkpoint, 0u);
  EXPECT_EQ(stats.checkpoints_delta, 1u);
}

TEST(Recovery, FailedCheckpointGatesWalGcUntilAFullSnapshotLands) {
  // Regression for a silent-data-loss hole: after a delta checkpoint's
  // write failed TRANSIENTLY, a later successful checkpoint used to drop
  // the sealed WAL segments backing the failed window — whose changes then
  // existed in no durable delta (the pending set was recycled at capture)
  // and in no WAL segment. Now GC stays gated, the next checkpoint is
  // forced FULL, and only once it lands durably do the retained segments
  // die. Either way, every acknowledged update must survive a crash.
  RecordCodec codec(kRecordSize);
  for (bool crash_before_repair : {true, false}) {
    FaultFs fs;
    auto options =
        DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db");
    SaeSystem system(options);
    ASSERT_TRUE(system.Load(SeedDataset(codec, 12)).ok());
    for (int i = 0; i < int(kSnapshotInterval) - 1; ++i) {
      ASSERT_TRUE(
          system.Insert(codec.MakeRecord(RecordId(200 + i), Key(500 + i)))
              .ok());
      ASSERT_TRUE(system.WaitForCheckpoints().ok());
    }
    // Counting from arming: the next insert's WAL commit is barrier 1, its
    // cadence delta checkpoint syncs the temp file at barrier 2. Fail that
    // sync transiently — the fs stays healthy, unlike CrashAtSyncPoint.
    fs.FailAtSyncPoint(2);
    ASSERT_TRUE(
        system.Insert(codec.MakeRecord(RecordId(299), Key(599))).ok());
    EXPECT_FALSE(system.WaitForCheckpoints().ok());  // the delta failed
    EXPECT_FALSE(fs.crashed());
    // The sealed segment backing the failed window must still be on disk:
    // it is the only durable copy of those updates.
    const std::string sealed = "/db/" + storage::WalSegmentName(1);
    EXPECT_TRUE(fs.Exists(sealed));

    uint64_t extra = 0;
    if (!crash_before_repair) {
      // Keep updating through the next cadence: the forced FULL snapshot
      // repairs the chain and resumes GC.
      for (; extra < kSnapshotInterval; ++extra) {
        ASSERT_TRUE(system
                        .Insert(codec.MakeRecord(RecordId(400 + int(extra)),
                                                 Key(600 + int(extra))))
                        .ok());
        ASSERT_TRUE(system.WaitForCheckpoints().ok());
      }
      DurabilityStats stats = system.durability_stats();
      EXPECT_GE(stats.checkpoints_full, 2u);   // Load baseline + repair
      EXPECT_EQ(stats.checkpoints_delta, 0u);  // the failed one never counted
      EXPECT_FALSE(fs.Exists(sealed));         // GC resumed after the repair
    }
    fs.DropVolatile();  // power loss
    auto recovered = SaeSystem::Recover(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    EXPECT_EQ(recovered.value()->epoch(), 1 + kSnapshotInterval + extra);
    VerifySweep(recovered.value().get());
  }
}

// A group fsync that fails transiently must (a) fail the update in a way a
// crash cannot undo — the staged record is durably RETRACTED by a WAL
// abort marker, never resurrected by recovery — and (b) leave the pipeline
// usable: the next update succeeds without a restart. Before this fix one
// transient fsync failure poisoned the pipeline for the process lifetime,
// and a durable-but-failed record could replay after a crash.
template <typename System>
void RunFsyncFailureRetractsAndReArms() {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  auto options = DurableOptions<System>(crypto::HashScheme::kSha1, &fs, "/db");
  System system(options);
  ASSERT_TRUE(system.Load(SeedDataset(codec, 8)).ok());
  ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(100), Key(40))).ok());

  // Counting from arming: the next insert's group fsync is barrier 1.
  // After it fails, the retraction syncs its abort marker at barrier 2.
  fs.FailAtSyncPoint(1);
  Status failed = system.Insert(codec.MakeRecord(RecordId(101), Key(41)));
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  // Re-armed: the very next update succeeds, no restart needed.
  ASSERT_TRUE(system.Insert(codec.MakeRecord(RecordId(102), Key(42))).ok());
  EXPECT_EQ(system.epoch(), 3u);

  // Crash. The abort marker's sync made the whole segment durable — the
  // failed record's bytes INCLUDED, exactly the resurrection scenario:
  // its epoch chains contiguously out of the snapshot, so without the
  // marker recovery would replay it. With it, the suffix is dropped.
  fs.DropVolatile();
  auto recovered = System::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  System& rec = *recovered.value();
  EXPECT_EQ(rec.epoch(), 3u);
  VerifySweep(&rec);
  bool saw_failed = false, saw_survivor = false;
  for (const Record& record : FullScan(&rec)) {
    saw_failed |= record.id == RecordId(101);
    saw_survivor |= record.id == RecordId(102);
  }
  EXPECT_FALSE(saw_failed) << "acknowledged-failed update resurrected";
  EXPECT_TRUE(saw_survivor);
}

TEST(Recovery, SaeFailedGroupFsyncRetractsDurablyAndReArms) {
  RunFsyncFailureRetractsAndReArms<SaeSystem>();
}

TEST(Recovery, TomFailedGroupFsyncRetractsDurablyAndReArms) {
  RunFsyncFailureRetractsAndReArms<TomSystem>();
}

TEST(Recovery, AbortRecordDropsTheRetractedSuffixAtOpen) {
  // Unit-level scan semantics: an abort marker retracts every EARLIER
  // record with epoch >= its epoch (a suffix — staged epochs only grow
  // between aborts), and re-staged epochs chain on after it.
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  {
    auto wal = storage::WriteAheadLog::Open(&fs, "/db").ValueOrDie();
    auto append = [&](WalUpdate::Op op, uint64_t epoch, RecordId id) {
      WalUpdate update;
      update.op = op;
      update.epoch = epoch;
      if (op == WalUpdate::kInsert) update.record = codec.MakeRecord(id, 7);
      EXPECT_TRUE(wal->Append(EncodeWalUpdate(update)).ok());
    };
    append(WalUpdate::kInsert, 2, 11);
    append(WalUpdate::kInsert, 3, 12);
    append(WalUpdate::kInsert, 4, 13);
    append(WalUpdate::kAbort, 3, 0);    // epochs 3 and 4 never happened
    append(WalUpdate::kInsert, 3, 22);  // the re-staged generation
    append(WalUpdate::kInsert, 4, 23);
  }
  core::DurabilityOptions options;
  options.enabled = true;
  options.dir = "/db";
  options.vfs = &fs;
  auto mgr = DurabilityManager::Open(options);
  ASSERT_TRUE(mgr.ok()) << mgr.status().message();
  const auto& rec = mgr.value()->recovered();
  EXPECT_FALSE(rec.wal_truncated);
  ASSERT_EQ(rec.wal_tail.size(), 3u);
  EXPECT_EQ(rec.wal_tail[0].record.id, RecordId(11));
  EXPECT_EQ(rec.wal_tail[1].record.id, RecordId(22));
  EXPECT_EQ(rec.wal_tail[2].record.id, RecordId(23));
}

TEST(Recovery, ModelAndConfigMismatchesAreRejected) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  {
    SaeSystem system(
        DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db"));
    ASSERT_TRUE(system.Load(SeedDataset(codec, 5)).ok());
  }
  fs.DropVolatile();
  // A TOM system must refuse an SAE directory...
  auto wrong_model = TomSystem::Recover(
      DurableOptions<TomSystem>(crypto::HashScheme::kSha1, &fs, "/db"));
  EXPECT_EQ(wrong_model.status().code(), StatusCode::kCorruption);
  // ...and a mismatched hash scheme is caught before any replay.
  auto wrong_scheme = SaeSystem::Recover(DurableOptions<SaeSystem>(
      crypto::HashScheme::kSha256Trunc, &fs, "/db"));
  EXPECT_EQ(wrong_scheme.status().code(), StatusCode::kCorruption);
}

TEST(Recovery, ShardedSystemRecoversEveryShardAndItsDirectory) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  core::ShardedSaeSystem::Options options;
  options.base =
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db");
  core::ShardRouter router({100, 200});  // 3 shards
  const std::vector<Op> ops = {
      {true, 500, 50}, {true, 501, 150}, {true, 502, 250}, {false, 2, 0}};
  uint64_t crash_after;
  {
    core::ShardedSaeSystem system(router, options);
    ASSERT_TRUE(system.Load(SeedDataset(codec, 18)).ok());
    for (const Op& op : ops) {
      ASSERT_TRUE(ApplyOp(&system, op, codec).ok());
    }
    crash_after = fs.sync_points();
  }
  // Crash mid-flight in a later, longer run: the extra updates past the
  // imaged state vanish, the ones above survive per shard.
  fs.DropVolatile();
  auto recovered = core::ShardedSaeSystem::Recover(router, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  ASSERT_GT(crash_after, 0u);
  core::ShardedSaeSystem& system = *recovered.value();

  auto outcome = system.Query(kMinKey, kMaxKey);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().verification.ok())
      << outcome.value().verification.message();
  // All three inserts and the delete survived into the right shards.
  std::vector<RecordId> ids;
  for (const Record& record : outcome.value().results) ids.push_back(record.id);
  EXPECT_NE(std::find(ids.begin(), ids.end(), RecordId(500)), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), RecordId(501)), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), RecordId(502)), ids.end());
  EXPECT_EQ(std::find(ids.begin(), ids.end(), RecordId(2)), ids.end());
  // The rebuilt directory routes deletes: removing a recovered record
  // works without re-listing the dataset.
  EXPECT_TRUE(system.Delete(RecordId(501)).ok());
}

// --- concurrent durable writers (the TSan CI target) -------------------------

TEST(DurableConcurrency, GroupCommitManyWritersRecoverExactly) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  // A nonzero simulated fsync cost makes natural commit groups form: while
  // one leader sleeps in its barrier, other writers stage behind it.
  fs.SetSyncLatency(50);
  auto options =
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db");
  options.durability.snapshot_interval = 16;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::vector<Record> live;
  {
    SaeSystem system(options);
    ASSERT_TRUE(system.Load(SeedDataset(codec, 10)).ok());
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          RecordId id = RecordId(1000 + t * kPerThread + i);
          if (!system.Insert(codec.MakeRecord(id, Key(2000 + id))).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    // Concurrent verifying readers exercise the shared-lock query path
    // against the group-commit writer pipeline.
    std::thread reader([&] {
      for (int i = 0; i < 40; ++i) {
        auto outcome = system.ExecuteQuery(kMinKey, kMaxKey);
        if (outcome.ok()) {
          EXPECT_TRUE(outcome.value().verification.ok());
        }
      }
    });
    for (auto& w : writers) w.join();
    reader.join();
    ASSERT_EQ(failures.load(), 0);
    EXPECT_EQ(system.epoch(), 1u + kThreads * kPerThread);
    ASSERT_TRUE(system.WaitForCheckpoints().ok());

    DurabilityStats stats = system.durability_stats();
    EXPECT_EQ(stats.wal_records, uint64_t(kThreads * kPerThread));
    EXPECT_LE(stats.wal_syncs, stats.wal_records);
    EXPECT_GE(stats.avg_group_records, 1.0);
    live = FullScan(&system);
    ASSERT_EQ(live.size(), 10u + kThreads * kPerThread);
  }
  // Every acknowledged update was durable before it applied: power loss
  // right now loses nothing.
  fs.DropVolatile();
  auto recovered = SaeSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered.value()->epoch(), 1u + kThreads * kPerThread);
  EXPECT_EQ(FullScan(recovered.value().get()), live);
  VerifySweep(recovered.value().get());
}

TEST(DurableConcurrency, TomGroupCommitWritersRecoverExactly) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  fs.SetSyncLatency(50);
  auto options =
      DurableOptions<TomSystem>(crypto::HashScheme::kSha1, &fs, "/db");
  constexpr int kThreads = 2;
  constexpr int kPerThread = 6;
  std::vector<Record> live;
  {
    TomSystem system(options);
    ASSERT_TRUE(system.Load(SeedDataset(codec, 8)).ok());
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          RecordId id = RecordId(1000 + t * kPerThread + i);
          if (!system.Insert(codec.MakeRecord(id, Key(2000 + id))).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& w : writers) w.join();
    ASSERT_EQ(failures.load(), 0);
    EXPECT_EQ(system.epoch(), 1u + kThreads * kPerThread);
    ASSERT_TRUE(system.WaitForCheckpoints().ok());
    live = FullScan(&system);
  }
  fs.DropVolatile();
  auto recovered = TomSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(recovered.value()->epoch(), 1u + kThreads * kPerThread);
  EXPECT_EQ(FullScan(recovered.value().get()), live);
}

TEST(DurableConcurrency, ShardedDurableWritersAcrossShards) {
  RecordCodec codec(kRecordSize);
  FaultFs fs;
  fs.SetSyncLatency(20);
  core::ShardedSaeSystem::Options options;
  options.base =
      DurableOptions<SaeSystem>(crypto::HashScheme::kSha1, &fs, "/db");
  options.base.durability.snapshot_interval = 8;
  core::ShardRouter router({100, 200});  // 3 shards
  constexpr int kThreads = 3;
  constexpr int kPerThread = 16;
  std::vector<Record> live;
  {
    core::ShardedSaeSystem system(router, options);
    ASSERT_TRUE(system.Load(SeedDataset(codec, 9)).ok());
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      // Each thread writes keys landing on its own shard, so per-shard
      // writers run genuinely in parallel (no shared writer lock).
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          RecordId id = RecordId(1000 + t * kPerThread + i);
          Key key = Key(t * 100 + 10 + i);
          if (!system.Insert(codec.MakeRecord(id, key)).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    std::thread reader([&] {
      for (int i = 0; i < 30; ++i) {
        auto outcome = system.ExecuteQuery(kMinKey, kMaxKey);
        if (outcome.ok()) {
          EXPECT_TRUE(outcome.value().verification.ok());
        }
      }
    });
    for (auto& w : writers) w.join();
    reader.join();
    ASSERT_EQ(failures.load(), 0);
    ASSERT_TRUE(system.WaitForCheckpoints().ok());
    DurabilityStats stats = system.durability_stats();
    EXPECT_EQ(stats.wal_records, uint64_t(kThreads * kPerThread));
    live = FullScan(&system);
    ASSERT_EQ(live.size(), 9u + kThreads * kPerThread);
  }
  fs.DropVolatile();
  auto recovered = core::ShardedSaeSystem::Recover(router, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(FullScan(recovered.value().get()), live);
}

}  // namespace
}  // namespace sae
