// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Adversarial security tests beyond simple result tampering: hand-crafted
// malicious verification objects for TOM, forged tokens/signatures, and the
// algebraic properties SAE's security argument rests on.

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "core/client.h"
#include "core/system.h"
#include "crypto/rsa.h"
#include "mbtree/mb_tree.h"
#include "mbtree/vo.h"
#include "sigchain/sig_chain.h"
#include "storage/page_store.h"
#include "util/random.h"
#include "workload/dataset.h"

namespace sae {
namespace {

using core::Record;
using storage::BufferPool;
using storage::InMemoryPageStore;
using storage::RecordCodec;

constexpr size_t kRecSize = 64;

crypto::RsaPrivateKey* SharedKey() {
  static crypto::RsaPrivateKey* key = [] {
    Rng rng(0x5EED1);
    return new crypto::RsaPrivateKey(crypto::RsaGenerateKey(&rng, 512));
  }();
  return key;
}

// A TOM stack small enough to craft VOs by hand.
class VoCraftTest : public ::testing::Test {
 protected:
  VoCraftTest() : pool_(&store_, 512), codec_(kRecSize) {
    mbtree::MbTreeOptions options;
    options.max_leaf_entries = 5;
    options.max_internal_keys = 4;
    tree_ = mbtree::MbTree::Create(&pool_, options).ValueOrDie();
    for (uint64_t id = 1; id <= 100; ++id) {
      Record r = codec_.MakeRecord(id, uint32_t(id * 10));
      records_[id] = r;
      auto bytes = codec_.Serialize(r);
      SAE_CHECK_OK(tree_->Insert(mbtree::MbEntry{
          r.key, storage::Rid(id),
          crypto::ComputeDigest(bytes.data(), bytes.size())}));
    }
  }

  mbtree::MbTree::RecordFetcher Fetcher() {
    return [this](storage::Rid rid) -> Result<std::vector<uint8_t>> {
      return codec_.Serialize(records_.at(rid));
    };
  }

  std::vector<Record> Results(uint32_t lo, uint32_t hi) {
    std::vector<Record> out;
    for (auto& [id, r] : records_) {
      if (r.key >= lo && r.key <= hi) out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });
    return out;
  }

  // Signs the current root for the given epoch — the stamped commitment,
  // exactly as TomDataOwner::Resign does.
  mbtree::VerificationObject SignedVo(uint32_t lo, uint32_t hi,
                                      uint64_t epoch = 0) {
    auto vo = tree_->BuildVo(lo, hi, Fetcher()).ValueOrDie();
    vo.epoch = epoch;
    vo.signature = crypto::RsaSignDigest(
        *SharedKey(),
        crypto::EpochStampedDigest(tree_->root_digest(), epoch));
    return vo;
  }

  // Walks the VO and applies `fn` to every item (depth first).
  static void ForEachItem(mbtree::VoNode* node,
                          const std::function<void(mbtree::VoNode*, size_t)>& fn) {
    for (size_t i = 0; i < node->items.size(); ++i) {
      fn(node, i);
      if (node->items[i].type == mbtree::VoItem::Type::kChild) {
        ForEachItem(node->items[i].child.get(), fn);
      }
    }
  }

  InMemoryPageStore store_;
  BufferPool pool_;
  RecordCodec codec_;
  std::unique_ptr<mbtree::MbTree> tree_;
  std::map<uint64_t, Record> records_;
};

TEST_F(VoCraftTest, HonestBaselineVerifies) {
  auto vo = SignedVo(200, 600);
  EXPECT_TRUE(mbtree::VerifyVO(vo, 200, 600, Results(200, 600),
                               SharedKey()->PublicKey(), codec_)
                  .ok());
}

// The classic hiding attack: replace a covered result slot with its bare
// digest, drop the record, and keep the root digest perfectly valid. Only
// the structural span check can catch this.
TEST_F(VoCraftTest, HidingResultBehindDigestIsDetected) {
  auto vo = SignedVo(200, 600);
  std::vector<Record> results = Results(200, 600);

  // Find the first result slot and replace it with the record's digest.
  bool replaced = false;
  ForEachItem(&vo.root, [&](mbtree::VoNode* node, size_t i) {
    if (replaced || node->items[i].type != mbtree::VoItem::Type::kResultEntry)
      return;
    auto bytes = codec_.Serialize(results.front());
    node->items[i].type = mbtree::VoItem::Type::kDigest;
    node->items[i].digest =
        crypto::ComputeDigest(bytes.data(), bytes.size());
    replaced = true;
  });
  ASSERT_TRUE(replaced);
  results.erase(results.begin());

  // Root digest still reconstructs, so only the span rule rejects it.
  Status st = mbtree::VerifyVO(vo, 200, 600, results,
                               SharedKey()->PublicKey(), codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

// Hiding an entire subtree: replace a covered child with its digest.
TEST_F(VoCraftTest, HidingSubtreeBehindDigestIsDetected) {
  auto vo = SignedVo(0, 2000);  // wide range -> covered children exist
  std::vector<Record> results = Results(0, 2000);

  // Locate a child item whose subtree contains result slots, compute its
  // true digest by replaying it, then collapse it.
  std::function<size_t(const mbtree::VoNode&)> count_results =
      [&](const mbtree::VoNode& node) {
        size_t n = 0;
        for (const auto& item : node.items) {
          if (item.type == mbtree::VoItem::Type::kResultEntry) ++n;
          if (item.type == mbtree::VoItem::Type::kChild) {
            n += count_results(*item.child);
          }
        }
        return n;
      };

  bool collapsed = false;
  size_t skip = 0;
  ForEachItem(&vo.root, [&](mbtree::VoNode* node, size_t i) {
    auto& item = node->items[i];
    if (collapsed || item.type != mbtree::VoItem::Type::kChild) return;
    size_t in_subtree = count_results(*item.child);
    if (in_subtree == 0 || in_subtree == results.size()) return;

    // Count result slots before this subtree to know which records vanish.
    // (Cheap approach: collapse the first eligible subtree, which by
    // in-order layout covers the first `in_subtree` remaining results.)
    std::vector<crypto::Digest> digests;
    std::function<crypto::Digest(const mbtree::VoNode&)> replay =
        [&](const mbtree::VoNode& n) {
          std::vector<crypto::Digest> ds;
          for (const auto& it : n.items) {
            switch (it.type) {
              case mbtree::VoItem::Type::kDigest:
                ds.push_back(it.digest);
                break;
              case mbtree::VoItem::Type::kBoundaryRecord: {
                ds.push_back(crypto::ComputeDigest(it.record_bytes.data(),
                                                   it.record_bytes.size()));
                break;
              }
              case mbtree::VoItem::Type::kResultEntry: {
                auto bytes = codec_.Serialize(results[skip]);
                ds.push_back(
                    crypto::ComputeDigest(bytes.data(), bytes.size()));
                ++skip;
                break;
              }
              case mbtree::VoItem::Type::kChild:
                ds.push_back(replay(*it.child));
                break;
            }
          }
          return crypto::CombineDigests(ds.data(), ds.size());
        };
    // Records consumed before this item: replay preceding siblings only to
    // advance `skip` (simplification: assume this is the first child with
    // results, true for this dataset/query).
    crypto::Digest true_digest = replay(*item.child);
    item.type = mbtree::VoItem::Type::kDigest;
    item.digest = true_digest;
    item.child.reset();
    results.erase(results.begin() + long(0),
                  results.begin() + long(in_subtree));
    collapsed = true;
  });
  ASSERT_TRUE(collapsed);

  Status st = mbtree::VerifyVO(vo, 0, 2000, results,
                               SharedKey()->PublicKey(), codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(VoCraftTest, BoundaryForgeryIsDetected) {
  // Claim a narrower completeness span by moving the left boundary: replace
  // the left boundary record with a record of higher key (a record between
  // the true boundary and the hidden result).
  auto vo = SignedVo(200, 600);
  std::vector<Record> results = Results(200, 600);
  ASSERT_GE(results.size(), 2u);

  bool forged = false;
  ForEachItem(&vo.root, [&](mbtree::VoNode* node, size_t i) {
    auto& item = node->items[i];
    if (forged || item.type != mbtree::VoItem::Type::kBoundaryRecord) return;
    // Overwrite the boundary bytes with the first result record; then drop
    // that record from the result list ("it was just the boundary").
    item.record_bytes = codec_.Serialize(results.front());
    forged = true;
  });
  ASSERT_TRUE(forged);
  results.erase(results.begin());

  Status st = mbtree::VerifyVO(vo, 200, 600, results,
                               SharedKey()->PublicKey(), codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(VoCraftTest, SignatureFromForeignKeyIsRejected) {
  auto vo = tree_->BuildVo(200, 600, Fetcher()).ValueOrDie();
  Rng rng(777);
  crypto::RsaPrivateKey mallory = crypto::RsaGenerateKey(&rng, 512);
  vo.signature = crypto::RsaSignDigest(mallory, tree_->root_digest());
  Status st = mbtree::VerifyVO(vo, 200, 600, Results(200, 600),
                               SharedKey()->PublicKey(), codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(VoCraftTest, ReplayedVoForOldStateIsRejected) {
  auto old_vo = SignedVo(200, 600, /*epoch=*/1);
  auto old_results = Results(200, 600);
  // The dataset changes (a record inside the range is deleted).
  Record victim = old_results[1];
  SAE_CHECK_OK(tree_->Delete(victim.key, storage::Rid(victim.id)));
  records_.erase(victim.id);

  // The SP replays the old VO + old results against the *new* signature.
  auto fresh_sig = crypto::RsaSignDigest(
      *SharedKey(), crypto::EpochStampedDigest(tree_->root_digest(), 2));
  old_vo.signature = fresh_sig;
  old_vo.epoch = 2;
  Status st = mbtree::VerifyVO(old_vo, 200, 600, old_results,
                               SharedKey()->PublicKey(), codec_,
                               crypto::HashScheme::kSha1, /*current=*/2);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

// The textbook replay: the WHOLE pre-update answer — old results, old VO,
// old epoch-stamped signature — is internally consistent and passes every
// cryptographic check for its own epoch. Only the freshness gate, with its
// distinct error code, can reject it.
TEST_F(VoCraftTest, FullReplayOfConsistentOldStateIsStaleNotCorrupt) {
  auto old_vo = SignedVo(200, 600, /*epoch=*/1);
  auto old_results = Results(200, 600);

  // Sanity: the replay verifies cleanly against its own epoch.
  EXPECT_TRUE(mbtree::VerifyVO(old_vo, 200, 600, old_results,
                               SharedKey()->PublicKey(), codec_,
                               crypto::HashScheme::kSha1, /*current=*/1)
                  .ok());

  // An update advances the published epoch to 2.
  Record victim = old_results[1];
  SAE_CHECK_OK(tree_->Delete(victim.key, storage::Rid(victim.id)));
  records_.erase(victim.id);

  Status st = mbtree::VerifyVO(old_vo, 200, 600, old_results,
                               SharedKey()->PublicKey(), codec_,
                               crypto::HashScheme::kSha1, /*current=*/2);
  EXPECT_EQ(st.code(), StatusCode::kStaleEpoch);
}

TEST_F(VoCraftTest, ForgedFresherEpochBreaksTheSignature) {
  // An adversary who rewrites the stale VO's epoch to the current one
  // converts staleness into a signature failure — never into acceptance.
  auto vo = SignedVo(200, 600, /*epoch=*/1);
  vo.epoch = 2;
  Status st = mbtree::VerifyVO(vo, 200, 600, Results(200, 600),
                               SharedKey()->PublicKey(), codec_,
                               crypto::HashScheme::kSha1, /*current=*/2);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

// --- hand-built malformed VOs ----------------------------------------------------

class MalformedVoTest : public ::testing::Test {
 protected:
  RecordCodec codec_{kRecSize};

  Status Verify(mbtree::VerificationObject vo,
                const std::vector<Record>& results) {
    // Content is structurally wrong before the signature matters; use any
    // key so signature checking is reached only on structurally valid VOs.
    vo.signature.assign(64, 0x11);
    return mbtree::VerifyVO(vo, 10, 20, results, SharedKey()->PublicKey(),
                            codec_);
  }
};

TEST_F(MalformedVoTest, EmptyRootRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  EXPECT_FALSE(Verify(std::move(vo), {}).ok());
}

TEST_F(MalformedVoTest, ResultSlotAboveLeafLevelRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = false;  // internal node claiming a result slot
  mbtree::VoItem item;
  item.type = mbtree::VoItem::Type::kResultEntry;
  vo.root.items.push_back(std::move(item));
  Record r = codec_.MakeRecord(1, 15);
  EXPECT_FALSE(Verify(std::move(vo), {r}).ok());
}

TEST_F(MalformedVoTest, ChildUnderLeafRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  mbtree::VoItem item;
  item.type = mbtree::VoItem::Type::kChild;
  item.child = std::make_unique<mbtree::VoNode>();
  item.child->is_leaf = true;
  mbtree::VoItem inner;
  inner.type = mbtree::VoItem::Type::kResultEntry;
  item.child->items.push_back(std::move(inner));
  vo.root.items.push_back(std::move(item));
  Record r = codec_.MakeRecord(1, 15);
  EXPECT_FALSE(Verify(std::move(vo), {r}).ok());
}

TEST_F(MalformedVoTest, ThreeBoundariesRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  for (uint32_t key : {5u, 25u, 30u}) {
    mbtree::VoItem item;
    item.type = mbtree::VoItem::Type::kBoundaryRecord;
    item.record_bytes = codec_.Serialize(codec_.MakeRecord(key, key));
    vo.root.items.push_back(std::move(item));
  }
  EXPECT_FALSE(Verify(std::move(vo), {}).ok());
}

TEST_F(MalformedVoTest, MoreResultSlotsThanRecordsRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  for (int i = 0; i < 3; ++i) {
    mbtree::VoItem item;
    item.type = mbtree::VoItem::Type::kResultEntry;
    vo.root.items.push_back(std::move(item));
  }
  Record r = codec_.MakeRecord(1, 15);
  EXPECT_FALSE(Verify(std::move(vo), {r}).ok());
}

TEST_F(MalformedVoTest, FewerResultSlotsThanRecordsRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  mbtree::VoItem item;
  item.type = mbtree::VoItem::Type::kResultEntry;
  vo.root.items.push_back(std::move(item));
  Record a = codec_.MakeRecord(1, 15);
  Record b = codec_.MakeRecord(2, 16);
  EXPECT_FALSE(Verify(std::move(vo), {a, b}).ok());
}

// --- freshness attack matrix ----------------------------------------------------
//
// Both freshness attacks, across both models (SAE over the XB-tree, TOM
// over the MB-tree) and both hash schemes, must be rejected with the
// *distinct* freshness code kStaleEpoch — never silently accepted, and
// never misreported as generic corruption.

std::vector<core::Record> MatrixDataset(size_t n) {
  storage::RecordCodec codec(kRecSize);
  std::vector<core::Record> out;
  for (uint64_t id = 1; id <= n; ++id) {
    out.push_back(codec.MakeRecord(id, uint32_t(id * 10)));
  }
  return out;
}

class FreshnessMatrixTest
    : public ::testing::TestWithParam<crypto::HashScheme> {};

TEST_P(FreshnessMatrixTest, SaeRejectsBothFreshnessAttacks) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  core::SaeSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));

  // Advance the epoch so a genuine pre-update snapshot exists.
  storage::RecordCodec codec(kRecSize);
  ASSERT_TRUE(system.Insert(codec.MakeRecord(9000, 1234)).ok());
  ASSERT_TRUE(system.Delete(5).ok());
  EXPECT_EQ(system.epoch(), 3u);

  for (core::AttackMode mode :
       {core::AttackMode::kReplayStaleRoot, core::AttackMode::kStaleVt}) {
    auto outcome = system.Query(100, 2500, mode);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().verification.code(), StatusCode::kStaleEpoch)
        << "mode " << int(mode) << ": " << outcome.value().verification.ToString();
  }
  // Honest queries still verify at the new epoch.
  auto honest = system.Query(100, 2500);
  ASSERT_TRUE(honest.ok());
  EXPECT_TRUE(honest.value().verification.ok());
  EXPECT_EQ(honest.value().vt.epoch, 3u);
}

TEST_P(FreshnessMatrixTest, TomRejectsBothFreshnessAttacks) {
  core::TomSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  options.rsa_modulus_bits = 512;  // fast for tests
  core::TomSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));

  storage::RecordCodec codec(kRecSize);
  ASSERT_TRUE(system.Insert(codec.MakeRecord(9000, 1234)).ok());
  ASSERT_TRUE(system.Delete(5).ok());
  EXPECT_EQ(system.epoch(), 3u);

  for (core::AttackMode mode :
       {core::AttackMode::kReplayStaleRoot, core::AttackMode::kStaleVt}) {
    auto outcome = system.Query(100, 2500, mode);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().verification.code(), StatusCode::kStaleEpoch)
        << "mode " << int(mode) << ": " << outcome.value().verification.ToString();
  }
  auto honest = system.Query(100, 2500);
  ASSERT_TRUE(honest.ok());
  EXPECT_TRUE(honest.value().verification.ok());
  EXPECT_EQ(honest.value().vo.epoch, 3u);
}

// A replay staged before ANY update exists must still be rejected (the
// adversary claims a rewound epoch — "malicious" never means "honest").
TEST_P(FreshnessMatrixTest, FreshnessAttacksRejectedEvenWithoutUpdates) {
  core::SaeSystem::Options sae_options;
  sae_options.record_size = kRecSize;
  sae_options.scheme = GetParam();
  core::SaeSystem sae(sae_options);
  SAE_CHECK_OK(sae.Load(MatrixDataset(100)));

  core::TomSystem::Options tom_options;
  tom_options.record_size = kRecSize;
  tom_options.scheme = GetParam();
  tom_options.rsa_modulus_bits = 512;
  core::TomSystem tom(tom_options);
  SAE_CHECK_OK(tom.Load(MatrixDataset(100)));

  for (core::AttackMode mode :
       {core::AttackMode::kReplayStaleRoot, core::AttackMode::kStaleVt}) {
    auto sae_outcome = sae.Query(0, 500, mode);
    ASSERT_TRUE(sae_outcome.ok());
    EXPECT_EQ(sae_outcome.value().verification.code(),
              StatusCode::kStaleEpoch)
        << "SAE mode " << int(mode);
    auto tom_outcome = tom.Query(0, 500, mode);
    ASSERT_TRUE(tom_outcome.ok());
    EXPECT_EQ(tom_outcome.value().verification.code(),
              StatusCode::kStaleEpoch)
        << "TOM mode " << int(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(BothHashSchemes, FreshnessMatrixTest,
                         ::testing::Values(crypto::HashScheme::kSha1,
                                           crypto::HashScheme::kSha256Trunc));

// --- aggregate adversarial matrix -------------------------------------------------
//
// The answer-level attacks: the SP ships a perfectly genuine witness (the
// range proof verifies) but lies about the derived answer — wrong COUNT,
// wrong SUM, or a silently truncated top-k. Both models, both hash
// schemes: every lie must be a kVerificationFailure, record-level attacks
// must still be caught under aggregate operators, and the honest control
// row must verify.

struct AggregateCase {
  dbms::QueryRequest request;
  core::AttackMode attack;
};

std::vector<AggregateCase> AggregateCases() {
  return {
      {dbms::QueryRequest::Count(100, 2500), core::AttackMode::kWrongCount},
      {dbms::QueryRequest::Sum(100, 2500), core::AttackMode::kWrongSum},
      {dbms::QueryRequest::TopK(100, 2500, 5),
       core::AttackMode::kTruncatedTopK},
      // "Never silently honest": answer attacks against operators whose
      // primary dimension is elsewhere are still caught, because every
      // derived dimension is checked for every operator — and truncation
      // against a non-top-k operator (whose rows are the witness, not the
      // answer) degrades to a count lie rather than a no-op.
      {dbms::QueryRequest::Scan(100, 2500), core::AttackMode::kWrongCount},
      {dbms::QueryRequest::Min(100, 2500), core::AttackMode::kWrongSum},
      {dbms::QueryRequest::Scan(100, 2500), core::AttackMode::kTruncatedTopK},
      {dbms::QueryRequest::Point(110), core::AttackMode::kTruncatedTopK},
      // Record-level tampering under an aggregate operator: the witness
      // breaks the range proof even though the claimed answer is
      // self-consistent with the tampered witness.
      {dbms::QueryRequest::Count(100, 2500), core::AttackMode::kDropOne},
      {dbms::QueryRequest::Sum(100, 2500), core::AttackMode::kInjectFake},
      {dbms::QueryRequest::TopK(100, 2500, 5),
       core::AttackMode::kTamperPayload},
      // Empty range: the truncation attack degrades to a count lie.
      {dbms::QueryRequest::TopK(900000, 950000, 5),
       core::AttackMode::kTruncatedTopK},
  };
}

class AggregateMatrixTest
    : public ::testing::TestWithParam<crypto::HashScheme> {};

TEST_P(AggregateMatrixTest, SaeRejectsEveryAggregateAttack) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  core::SaeSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));

  for (const AggregateCase& c : AggregateCases()) {
    auto outcome = system.Query(c.request, c.attack);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().verification.code(),
              StatusCode::kVerificationFailure)
        << dbms::QueryOpName(c.request.op) << " under attack "
        << int(c.attack) << ": " << outcome.value().verification.ToString();
    // Control row: the same request, honest, verifies.
    auto honest = system.Query(c.request);
    ASSERT_TRUE(honest.ok());
    EXPECT_TRUE(honest.value().verification.ok())
        << dbms::QueryOpName(c.request.op);
  }
}

TEST_P(AggregateMatrixTest, TomRejectsEveryAggregateAttack) {
  core::TomSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  options.rsa_modulus_bits = 512;  // fast for tests
  core::TomSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));

  for (const AggregateCase& c : AggregateCases()) {
    auto outcome = system.Query(c.request, c.attack);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().verification.code(),
              StatusCode::kVerificationFailure)
        << dbms::QueryOpName(c.request.op) << " under attack "
        << int(c.attack) << ": " << outcome.value().verification.ToString();
    auto honest = system.Query(c.request);
    ASSERT_TRUE(honest.ok());
    EXPECT_TRUE(honest.value().verification.ok())
        << dbms::QueryOpName(c.request.op);
  }
}

// Aggregate lies and freshness attacks are orthogonal gates: a stale
// replay of an aggregate query reports staleness (the freshness gate runs
// first), never generic corruption.
TEST_P(AggregateMatrixTest, StaleAggregateReportsStalenessNotCorruption) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  core::SaeSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));
  storage::RecordCodec codec(kRecSize);
  ASSERT_TRUE(system.Insert(codec.MakeRecord(9000, 1234)).ok());

  auto outcome = system.Query(dbms::QueryRequest::Count(100, 2500),
                              core::AttackMode::kReplayStaleRoot);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().verification.code(), StatusCode::kStaleEpoch);
}

INSTANTIATE_TEST_SUITE_P(BothHashSchemes, AggregateMatrixTest,
                         ::testing::Values(crypto::HashScheme::kSha1,
                                           crypto::HashScheme::kSha256Trunc));

// The third scheme: signature chaining. Its per-record signatures never
// change, so freshness rides on the signed epoch token in every VO. Note
// the token binds only the epoch number (sigchain has no root digest to
// stamp — see EpochTokenDigest's documented limitation): it defeats token
// replay, which is what this test pins, not stale-data-under-fresh-token.
TEST(SigChainFreshnessTest, StaleEpochTokenRejected) {
  sigchain::SigChainOwner::Options owner_options;
  owner_options.record_size = kRecSize;
  owner_options.rsa_modulus_bits = 512;
  sigchain::SigChainOwner owner(owner_options);
  sigchain::SigChainSp::Options sp_options;
  sp_options.record_size = kRecSize;
  sp_options.signature_bytes = 64;
  sigchain::SigChainSp sp(sp_options);

  auto records = MatrixDataset(120);
  auto sigs = owner.SignDataset(records);
  ASSERT_TRUE(sigs.ok());
  ASSERT_TRUE(sp.LoadDataset(records, sigs.value(), owner.public_key()).ok());
  sp.SetEpoch(owner.epoch(), owner.epoch_signature());
  ASSERT_EQ(owner.epoch(), 1u);

  storage::RecordCodec codec(kRecSize);
  auto response = sp.ExecuteRange(200, 800).ValueOrDie();
  // Fresh at epoch 1.
  EXPECT_TRUE(sigchain::SigChainClient::Verify(
                  200, 800, response.results, response.vo,
                  owner.public_key(), codec, crypto::HashScheme::kSha1,
                  owner.epoch())
                  .ok());

  // The DO publishes epoch 2 (an update happened); the replayed epoch-1 VO
  // must now be rejected as stale — distinctly.
  owner.AdvanceEpoch();
  Status st = sigchain::SigChainClient::Verify(
      200, 800, response.results, response.vo, owner.public_key(), codec,
      crypto::HashScheme::kSha1, owner.epoch());
  EXPECT_EQ(st.code(), StatusCode::kStaleEpoch);

  // Forging the fresher epoch onto the old token breaks its signature.
  sigchain::SigChainVo forged = response.vo;
  forged.epoch = owner.epoch();
  st = sigchain::SigChainClient::Verify(200, 800, response.results, forged,
                                        owner.public_key(), codec,
                                        crypto::HashScheme::kSha1,
                                        owner.epoch());
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

// --- cache adversaries ---------------------------------------------------------
//
// The caching layer's threat model: the SP's answer cache is SP-side state,
// so a compromised SP can replay entries keyed to dead epochs or poison its
// own cache with tampered bytes. Neither may ever be accepted — clients
// verify cache hits exactly like misses ("caching without trusting the
// cache"). kPoisonedCache is the one attack that outlives its query: the
// poisoned entry keeps serving tampered bytes to later HONEST queries until
// an epoch bump flushes the cache, and every one of those must fail too.

class CacheAdversaryTest
    : public ::testing::TestWithParam<crypto::HashScheme> {};

TEST_P(CacheAdversaryTest, SaeStaleCacheReplayRejected) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  core::SaeSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));
  storage::RecordCodec codec(kRecSize);
  ASSERT_TRUE(system.Insert(codec.MakeRecord(9000, 1234)).ok());

  // Twice: the second replay is served from the stale SP's now-warm answer
  // cache — a literal cached blob keyed to the dead epoch.
  for (int i = 0; i < 2; ++i) {
    auto outcome =
        system.Query(100, 2500, core::AttackMode::kStaleCacheReplay);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().verification.code(), StatusCode::kStaleEpoch)
        << outcome.value().verification.ToString();
  }
  auto honest = system.Query(100, 2500);
  ASSERT_TRUE(honest.ok());
  EXPECT_TRUE(honest.value().verification.ok());
}

TEST_P(CacheAdversaryTest, TomStaleCacheReplayRejected) {
  core::TomSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  options.rsa_modulus_bits = 512;  // fast for tests
  core::TomSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));
  storage::RecordCodec codec(kRecSize);
  ASSERT_TRUE(system.Insert(codec.MakeRecord(9000, 1234)).ok());

  for (int i = 0; i < 2; ++i) {
    auto outcome =
        system.Query(100, 2500, core::AttackMode::kStaleCacheReplay);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().verification.code(), StatusCode::kStaleEpoch)
        << outcome.value().verification.ToString();
  }
  auto honest = system.Query(100, 2500);
  ASSERT_TRUE(honest.ok());
  EXPECT_TRUE(honest.value().verification.ok());
}

TEST_P(CacheAdversaryTest, SaePoisonedCachePersistsUntilEpochBump) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  core::SaeSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));
  dbms::QueryRequest request = dbms::QueryRequest::Scan(100, 2500);

  // The poisoning query itself ships tampered bytes: rejected.
  auto poisoned = system.Query(request, core::AttackMode::kPoisonedCache);
  ASSERT_TRUE(poisoned.ok());
  EXPECT_EQ(poisoned.value().verification.code(),
            StatusCode::kVerificationFailure);

  // The poison persists: subsequent HONEST queries for the same plan are
  // served the poisoned cache entry — and every one is still rejected.
  for (int i = 0; i < 2; ++i) {
    auto honest = system.Query(request);
    ASSERT_TRUE(honest.ok());
    EXPECT_EQ(honest.value().verification.code(),
              StatusCode::kVerificationFailure)
        << "poisoned cache entry must never be accepted";
  }
  // A different plan misses the poisoned key and verifies.
  auto other = system.Query(dbms::QueryRequest::Count(100, 2500));
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other.value().verification.ok());

  // An epoch bump flushes the cache; the same plan recovers.
  storage::RecordCodec codec(kRecSize);
  ASSERT_TRUE(system.Insert(codec.MakeRecord(9000, 1234)).ok());
  auto recovered = system.Query(request);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().verification.ok());
}

TEST_P(CacheAdversaryTest, TomPoisonedCachePersistsUntilEpochBump) {
  core::TomSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  options.rsa_modulus_bits = 512;  // fast for tests
  core::TomSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));
  dbms::QueryRequest request = dbms::QueryRequest::Scan(100, 2500);

  auto poisoned = system.Query(request, core::AttackMode::kPoisonedCache);
  ASSERT_TRUE(poisoned.ok());
  EXPECT_EQ(poisoned.value().verification.code(),
            StatusCode::kVerificationFailure);

  for (int i = 0; i < 2; ++i) {
    auto honest = system.Query(request);
    ASSERT_TRUE(honest.ok());
    EXPECT_EQ(honest.value().verification.code(),
              StatusCode::kVerificationFailure)
        << "poisoned cache entry must never be accepted";
  }
  auto other = system.Query(dbms::QueryRequest::Count(100, 2500));
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other.value().verification.ok());

  storage::RecordCodec codec(kRecSize);
  ASSERT_TRUE(system.Insert(codec.MakeRecord(9000, 1234)).ok());
  auto recovered = system.Query(request);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().verification.ok());
}

// Poisoning with the cache disabled still tampers the poisoning query
// itself (and is rejected), but nothing persists — the next honest query
// is clean. Pins the cache as the only persistence channel.
TEST_P(CacheAdversaryTest, PoisonWithoutCacheDoesNotPersist) {
  core::SaeSystem::Options options;
  options.record_size = kRecSize;
  options.scheme = GetParam();
  options.DisableCaches();
  core::SaeSystem system(options);
  SAE_CHECK_OK(system.Load(MatrixDataset(300)));
  dbms::QueryRequest request = dbms::QueryRequest::Scan(100, 2500);

  auto poisoned = system.Query(request, core::AttackMode::kPoisonedCache);
  ASSERT_TRUE(poisoned.ok());
  EXPECT_EQ(poisoned.value().verification.code(),
            StatusCode::kVerificationFailure);
  auto honest = system.Query(request);
  ASSERT_TRUE(honest.ok());
  EXPECT_TRUE(honest.value().verification.ok());
}

INSTANTIATE_TEST_SUITE_P(BothHashSchemes, CacheAdversaryTest,
                         ::testing::Values(crypto::HashScheme::kSha1,
                                           crypto::HashScheme::kSha256Trunc));

// The sigchain analog of a stale cache replay: an SP memoizing serialized
// (answer, VO) blobs replays one captured before the epoch advanced. The
// replayed blob round-trips perfectly (it IS a genuine old answer) but the
// epoch gate rejects it — in the single-item path and in VerifyBatch,
// which must attribute the stale item without contaminating fresh ones.
TEST(SigChainCacheReplayTest, CachedVoReplayAfterEpochBumpIsStale) {
  sigchain::SigChainOwner::Options owner_options;
  owner_options.record_size = kRecSize;
  owner_options.rsa_modulus_bits = 512;
  sigchain::SigChainOwner owner(owner_options);
  sigchain::SigChainSp::Options sp_options;
  sp_options.record_size = kRecSize;
  sp_options.signature_bytes = 64;
  sigchain::SigChainSp sp(sp_options);

  auto records = MatrixDataset(120);
  auto sigs = owner.SignDataset(records);
  ASSERT_TRUE(sigs.ok());
  ASSERT_TRUE(sp.LoadDataset(records, sigs.value(), owner.public_key()).ok());
  sp.SetEpoch(owner.epoch(), owner.epoch_signature());

  storage::RecordCodec codec(kRecSize);
  auto response = sp.ExecuteRange(200, 800).ValueOrDie();
  // The "cache": the serialized VO blob, exactly what an answer cache
  // would store and replay.
  std::vector<uint8_t> cached_blob = response.vo.Serialize();

  owner.AdvanceEpoch();  // an update elsewhere bumps the published epoch

  auto replayed = sigchain::SigChainVo::Deserialize(cached_blob);
  ASSERT_TRUE(replayed.ok());
  Status st = sigchain::SigChainClient::Verify(
      200, 800, response.results, replayed.value(), owner.public_key(),
      codec, crypto::HashScheme::kSha1, owner.epoch());
  EXPECT_EQ(st.code(), StatusCode::kStaleEpoch);

  // Batch path: one fresh item + the stale cached replay. Exactly the
  // stale one is flagged.
  sp.SetEpoch(owner.epoch(), owner.epoch_signature());
  auto fresh = sp.ExecuteRange(900, 1500).ValueOrDie();
  std::vector<sigchain::SigChainClient::BatchItem> items(2);
  items[0].request = dbms::QueryRequest::Scan(900, 1500);
  items[0].claimed = dbms::EvaluateAnswer(items[0].request, fresh.results);
  items[0].witness = fresh.results;
  items[0].vo = fresh.vo;
  items[1].request = dbms::QueryRequest::Scan(200, 800);
  items[1].claimed =
      dbms::EvaluateAnswer(items[1].request, response.results);
  items[1].witness = response.results;
  items[1].vo = replayed.value();
  std::vector<Status> verdicts = sigchain::SigChainClient::VerifyBatch(
      items, owner.public_key(), codec, crypto::HashScheme::kSha1,
      owner.epoch());
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].ok()) << verdicts[0].ToString();
  EXPECT_EQ(verdicts[1].code(), StatusCode::kStaleEpoch);
}

// --- SAE token properties -------------------------------------------------------

TEST(VtAlgebraTest, DisjointRangesCompose) {
  // VT[a,c] = VT[a,b] ^ VT(b,c] — the XOR group structure GenerateVT
  // exploits. Checked through the public TE interface.
  InMemoryPageStore store;
  BufferPool pool(&store, 512);
  auto tree = xbtree::XbTree::Create(&pool).ValueOrDie();
  Rng rng(4242);
  for (uint64_t id = 1; id <= 2000; ++id) {
    crypto::Digest d = crypto::ComputeDigest(&id, sizeof(id));
    SAE_CHECK_OK(tree->Insert(uint32_t(rng.NextBounded(10000)), id, d));
  }
  for (int i = 0; i < 25; ++i) {
    uint32_t a = uint32_t(rng.NextBounded(8000));
    uint32_t b = a + uint32_t(rng.NextBounded(1000));
    uint32_t c = b + 1 + uint32_t(rng.NextBounded(1000));
    crypto::Digest whole = tree->GenerateVT(a, c).ValueOrDie();
    crypto::Digest left = tree->GenerateVT(a, b).ValueOrDie();
    crypto::Digest right = tree->GenerateVT(b + 1, c).ValueOrDie();
    EXPECT_EQ(whole, left ^ right) << a << " " << b << " " << c;
  }
}

TEST(VtAlgebraTest, SwappingRecordsAcrossRangesIsDetected) {
  // A malicious SP cannot satisfy the token by substituting a record from
  // outside the range, even one from the same table.
  RecordCodec codec(kRecSize);
  std::vector<Record> in_range, out_of_range;
  for (uint64_t id = 1; id <= 10; ++id) {
    in_range.push_back(codec.MakeRecord(id, uint32_t(100 + id)));
    out_of_range.push_back(codec.MakeRecord(100 + id, uint32_t(900 + id)));
  }
  crypto::Digest vt = core::Client::ResultXor(in_range, codec);

  std::vector<Record> swapped = in_range;
  swapped[3] = out_of_range[3];
  EXPECT_FALSE(core::Client::VerifyResult(swapped, vt, codec).ok());
}

TEST(VtAlgebraTest, PayloadBitFlipChangesToken) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records{codec.MakeRecord(1, 10)};
  crypto::Digest vt = core::Client::ResultXor(records, codec);
  for (size_t byte : {0u, 7u, 20u, 51u}) {
    std::vector<Record> tampered = records;
    tampered[0].payload[byte] ^= 0x01;
    EXPECT_FALSE(core::Client::VerifyResult(tampered, vt, codec).ok())
        << "byte " << byte;
  }
}

TEST(VtAlgebraTest, PairCancellationRequiresIdenticalRecords) {
  // XOR-cancellation (adding a record twice) only "works" when the very
  // same bytes appear twice — which the client can reject by checking for
  // duplicate ids; different records never cancel.
  RecordCodec codec(kRecSize);
  Record a = codec.MakeRecord(1, 10);
  Record b = codec.MakeRecord(2, 10);
  std::vector<Record> honest{a};
  crypto::Digest vt = core::Client::ResultXor(honest, codec);
  std::vector<Record> padded{a, b, b};
  // b ^ b cancels: the multiset {a, b, b} has the same XOR as {a}.
  EXPECT_TRUE(core::Client::VerifyResult(padded, vt, codec).ok());
  // ...but {a, b, b'} with b' != b never matches.
  Record b_prime = b;
  b_prime.payload[0] ^= 1;
  std::vector<Record> broken{a, b, b_prime};
  EXPECT_FALSE(core::Client::VerifyResult(broken, vt, codec).ok());
}

TEST(VtAlgebraTest, EndToEndDuplicatePairAttackVisibility) {
  // The XOR check alone admits even-multiplicity padding (previous test);
  // the paper's client can additionally reject duplicate record ids. Verify
  // the library exposes enough information to do so.
  RecordCodec codec(kRecSize);
  Record a = codec.MakeRecord(1, 10);
  Record b = codec.MakeRecord(2, 11);
  std::vector<Record> padded{a, b, b};
  std::map<uint64_t, int> id_count;
  for (const auto& r : padded) ++id_count[r.id];
  bool has_duplicate_ids = false;
  for (auto& [id, n] : id_count) has_duplicate_ids |= (n > 1);
  EXPECT_TRUE(has_duplicate_ids);
}

}  // namespace
}  // namespace sae
