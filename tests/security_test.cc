// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Adversarial security tests beyond simple result tampering: hand-crafted
// malicious verification objects for TOM, forged tokens/signatures, and the
// algebraic properties SAE's security argument rests on.

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "core/client.h"
#include "core/system.h"
#include "crypto/rsa.h"
#include "mbtree/mb_tree.h"
#include "mbtree/vo.h"
#include "storage/page_store.h"
#include "util/random.h"
#include "workload/dataset.h"

namespace sae {
namespace {

using core::Record;
using storage::BufferPool;
using storage::InMemoryPageStore;
using storage::RecordCodec;

constexpr size_t kRecSize = 64;

crypto::RsaPrivateKey* SharedKey() {
  static crypto::RsaPrivateKey* key = [] {
    Rng rng(0x5EED1);
    return new crypto::RsaPrivateKey(crypto::RsaGenerateKey(&rng, 512));
  }();
  return key;
}

// A TOM stack small enough to craft VOs by hand.
class VoCraftTest : public ::testing::Test {
 protected:
  VoCraftTest() : pool_(&store_, 512), codec_(kRecSize) {
    mbtree::MbTreeOptions options;
    options.max_leaf_entries = 5;
    options.max_internal_keys = 4;
    tree_ = mbtree::MbTree::Create(&pool_, options).ValueOrDie();
    for (uint64_t id = 1; id <= 100; ++id) {
      Record r = codec_.MakeRecord(id, uint32_t(id * 10));
      records_[id] = r;
      auto bytes = codec_.Serialize(r);
      SAE_CHECK_OK(tree_->Insert(mbtree::MbEntry{
          r.key, storage::Rid(id),
          crypto::ComputeDigest(bytes.data(), bytes.size())}));
    }
  }

  mbtree::MbTree::RecordFetcher Fetcher() {
    return [this](storage::Rid rid) -> Result<std::vector<uint8_t>> {
      return codec_.Serialize(records_.at(rid));
    };
  }

  std::vector<Record> Results(uint32_t lo, uint32_t hi) {
    std::vector<Record> out;
    for (auto& [id, r] : records_) {
      if (r.key >= lo && r.key <= hi) out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });
    return out;
  }

  mbtree::VerificationObject SignedVo(uint32_t lo, uint32_t hi) {
    auto vo = tree_->BuildVo(lo, hi, Fetcher()).ValueOrDie();
    vo.signature = crypto::RsaSignDigest(*SharedKey(), tree_->root_digest());
    return vo;
  }

  // Walks the VO and applies `fn` to every item (depth first).
  static void ForEachItem(mbtree::VoNode* node,
                          const std::function<void(mbtree::VoNode*, size_t)>& fn) {
    for (size_t i = 0; i < node->items.size(); ++i) {
      fn(node, i);
      if (node->items[i].type == mbtree::VoItem::Type::kChild) {
        ForEachItem(node->items[i].child.get(), fn);
      }
    }
  }

  InMemoryPageStore store_;
  BufferPool pool_;
  RecordCodec codec_;
  std::unique_ptr<mbtree::MbTree> tree_;
  std::map<uint64_t, Record> records_;
};

TEST_F(VoCraftTest, HonestBaselineVerifies) {
  auto vo = SignedVo(200, 600);
  EXPECT_TRUE(mbtree::VerifyVO(vo, 200, 600, Results(200, 600),
                               SharedKey()->PublicKey(), codec_)
                  .ok());
}

// The classic hiding attack: replace a covered result slot with its bare
// digest, drop the record, and keep the root digest perfectly valid. Only
// the structural span check can catch this.
TEST_F(VoCraftTest, HidingResultBehindDigestIsDetected) {
  auto vo = SignedVo(200, 600);
  std::vector<Record> results = Results(200, 600);

  // Find the first result slot and replace it with the record's digest.
  bool replaced = false;
  ForEachItem(&vo.root, [&](mbtree::VoNode* node, size_t i) {
    if (replaced || node->items[i].type != mbtree::VoItem::Type::kResultEntry)
      return;
    auto bytes = codec_.Serialize(results.front());
    node->items[i].type = mbtree::VoItem::Type::kDigest;
    node->items[i].digest =
        crypto::ComputeDigest(bytes.data(), bytes.size());
    replaced = true;
  });
  ASSERT_TRUE(replaced);
  results.erase(results.begin());

  // Root digest still reconstructs, so only the span rule rejects it.
  Status st = mbtree::VerifyVO(vo, 200, 600, results,
                               SharedKey()->PublicKey(), codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

// Hiding an entire subtree: replace a covered child with its digest.
TEST_F(VoCraftTest, HidingSubtreeBehindDigestIsDetected) {
  auto vo = SignedVo(0, 2000);  // wide range -> covered children exist
  std::vector<Record> results = Results(0, 2000);

  // Locate a child item whose subtree contains result slots, compute its
  // true digest by replaying it, then collapse it.
  std::function<size_t(const mbtree::VoNode&)> count_results =
      [&](const mbtree::VoNode& node) {
        size_t n = 0;
        for (const auto& item : node.items) {
          if (item.type == mbtree::VoItem::Type::kResultEntry) ++n;
          if (item.type == mbtree::VoItem::Type::kChild) {
            n += count_results(*item.child);
          }
        }
        return n;
      };

  bool collapsed = false;
  size_t skip = 0;
  ForEachItem(&vo.root, [&](mbtree::VoNode* node, size_t i) {
    auto& item = node->items[i];
    if (collapsed || item.type != mbtree::VoItem::Type::kChild) return;
    size_t in_subtree = count_results(*item.child);
    if (in_subtree == 0 || in_subtree == results.size()) return;

    // Count result slots before this subtree to know which records vanish.
    // (Cheap approach: collapse the first eligible subtree, which by
    // in-order layout covers the first `in_subtree` remaining results.)
    std::vector<crypto::Digest> digests;
    std::function<crypto::Digest(const mbtree::VoNode&)> replay =
        [&](const mbtree::VoNode& n) {
          std::vector<crypto::Digest> ds;
          for (const auto& it : n.items) {
            switch (it.type) {
              case mbtree::VoItem::Type::kDigest:
                ds.push_back(it.digest);
                break;
              case mbtree::VoItem::Type::kBoundaryRecord: {
                ds.push_back(crypto::ComputeDigest(it.record_bytes.data(),
                                                   it.record_bytes.size()));
                break;
              }
              case mbtree::VoItem::Type::kResultEntry: {
                auto bytes = codec_.Serialize(results[skip]);
                ds.push_back(
                    crypto::ComputeDigest(bytes.data(), bytes.size()));
                ++skip;
                break;
              }
              case mbtree::VoItem::Type::kChild:
                ds.push_back(replay(*it.child));
                break;
            }
          }
          return crypto::CombineDigests(ds.data(), ds.size());
        };
    // Records consumed before this item: replay preceding siblings only to
    // advance `skip` (simplification: assume this is the first child with
    // results, true for this dataset/query).
    crypto::Digest true_digest = replay(*item.child);
    item.type = mbtree::VoItem::Type::kDigest;
    item.digest = true_digest;
    item.child.reset();
    results.erase(results.begin() + long(0),
                  results.begin() + long(in_subtree));
    collapsed = true;
  });
  ASSERT_TRUE(collapsed);

  Status st = mbtree::VerifyVO(vo, 0, 2000, results,
                               SharedKey()->PublicKey(), codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(VoCraftTest, BoundaryForgeryIsDetected) {
  // Claim a narrower completeness span by moving the left boundary: replace
  // the left boundary record with a record of higher key (a record between
  // the true boundary and the hidden result).
  auto vo = SignedVo(200, 600);
  std::vector<Record> results = Results(200, 600);
  ASSERT_GE(results.size(), 2u);

  bool forged = false;
  ForEachItem(&vo.root, [&](mbtree::VoNode* node, size_t i) {
    auto& item = node->items[i];
    if (forged || item.type != mbtree::VoItem::Type::kBoundaryRecord) return;
    // Overwrite the boundary bytes with the first result record; then drop
    // that record from the result list ("it was just the boundary").
    item.record_bytes = codec_.Serialize(results.front());
    forged = true;
  });
  ASSERT_TRUE(forged);
  results.erase(results.begin());

  Status st = mbtree::VerifyVO(vo, 200, 600, results,
                               SharedKey()->PublicKey(), codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(VoCraftTest, SignatureFromForeignKeyIsRejected) {
  auto vo = tree_->BuildVo(200, 600, Fetcher()).ValueOrDie();
  Rng rng(777);
  crypto::RsaPrivateKey mallory = crypto::RsaGenerateKey(&rng, 512);
  vo.signature = crypto::RsaSignDigest(mallory, tree_->root_digest());
  Status st = mbtree::VerifyVO(vo, 200, 600, Results(200, 600),
                               SharedKey()->PublicKey(), codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(VoCraftTest, ReplayedVoForOldStateIsRejected) {
  auto old_vo = SignedVo(200, 600);
  auto old_results = Results(200, 600);
  // The dataset changes (a record inside the range is deleted).
  Record victim = old_results[1];
  SAE_CHECK_OK(tree_->Delete(victim.key, storage::Rid(victim.id)));
  records_.erase(victim.id);

  // The SP replays the old VO + old results against the *new* signature.
  auto fresh_sig =
      crypto::RsaSignDigest(*SharedKey(), tree_->root_digest());
  old_vo.signature = fresh_sig;
  Status st = mbtree::VerifyVO(old_vo, 200, 600, old_results,
                               SharedKey()->PublicKey(), codec_);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

// --- hand-built malformed VOs ----------------------------------------------------

class MalformedVoTest : public ::testing::Test {
 protected:
  RecordCodec codec_{kRecSize};

  Status Verify(mbtree::VerificationObject vo,
                const std::vector<Record>& results) {
    // Content is structurally wrong before the signature matters; use any
    // key so signature checking is reached only on structurally valid VOs.
    vo.signature.assign(64, 0x11);
    return mbtree::VerifyVO(vo, 10, 20, results, SharedKey()->PublicKey(),
                            codec_);
  }
};

TEST_F(MalformedVoTest, EmptyRootRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  EXPECT_FALSE(Verify(std::move(vo), {}).ok());
}

TEST_F(MalformedVoTest, ResultSlotAboveLeafLevelRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = false;  // internal node claiming a result slot
  mbtree::VoItem item;
  item.type = mbtree::VoItem::Type::kResultEntry;
  vo.root.items.push_back(std::move(item));
  Record r = codec_.MakeRecord(1, 15);
  EXPECT_FALSE(Verify(std::move(vo), {r}).ok());
}

TEST_F(MalformedVoTest, ChildUnderLeafRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  mbtree::VoItem item;
  item.type = mbtree::VoItem::Type::kChild;
  item.child = std::make_unique<mbtree::VoNode>();
  item.child->is_leaf = true;
  mbtree::VoItem inner;
  inner.type = mbtree::VoItem::Type::kResultEntry;
  item.child->items.push_back(std::move(inner));
  vo.root.items.push_back(std::move(item));
  Record r = codec_.MakeRecord(1, 15);
  EXPECT_FALSE(Verify(std::move(vo), {r}).ok());
}

TEST_F(MalformedVoTest, ThreeBoundariesRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  for (uint32_t key : {5u, 25u, 30u}) {
    mbtree::VoItem item;
    item.type = mbtree::VoItem::Type::kBoundaryRecord;
    item.record_bytes = codec_.Serialize(codec_.MakeRecord(key, key));
    vo.root.items.push_back(std::move(item));
  }
  EXPECT_FALSE(Verify(std::move(vo), {}).ok());
}

TEST_F(MalformedVoTest, MoreResultSlotsThanRecordsRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  for (int i = 0; i < 3; ++i) {
    mbtree::VoItem item;
    item.type = mbtree::VoItem::Type::kResultEntry;
    vo.root.items.push_back(std::move(item));
  }
  Record r = codec_.MakeRecord(1, 15);
  EXPECT_FALSE(Verify(std::move(vo), {r}).ok());
}

TEST_F(MalformedVoTest, FewerResultSlotsThanRecordsRejected) {
  mbtree::VerificationObject vo;
  vo.root.is_leaf = true;
  mbtree::VoItem item;
  item.type = mbtree::VoItem::Type::kResultEntry;
  vo.root.items.push_back(std::move(item));
  Record a = codec_.MakeRecord(1, 15);
  Record b = codec_.MakeRecord(2, 16);
  EXPECT_FALSE(Verify(std::move(vo), {a, b}).ok());
}

// --- SAE token properties -------------------------------------------------------

TEST(VtAlgebraTest, DisjointRangesCompose) {
  // VT[a,c] = VT[a,b] ^ VT(b,c] — the XOR group structure GenerateVT
  // exploits. Checked through the public TE interface.
  InMemoryPageStore store;
  BufferPool pool(&store, 512);
  auto tree = xbtree::XbTree::Create(&pool).ValueOrDie();
  Rng rng(4242);
  for (uint64_t id = 1; id <= 2000; ++id) {
    crypto::Digest d = crypto::ComputeDigest(&id, sizeof(id));
    SAE_CHECK_OK(tree->Insert(uint32_t(rng.NextBounded(10000)), id, d));
  }
  for (int i = 0; i < 25; ++i) {
    uint32_t a = uint32_t(rng.NextBounded(8000));
    uint32_t b = a + uint32_t(rng.NextBounded(1000));
    uint32_t c = b + 1 + uint32_t(rng.NextBounded(1000));
    crypto::Digest whole = tree->GenerateVT(a, c).ValueOrDie();
    crypto::Digest left = tree->GenerateVT(a, b).ValueOrDie();
    crypto::Digest right = tree->GenerateVT(b + 1, c).ValueOrDie();
    EXPECT_EQ(whole, left ^ right) << a << " " << b << " " << c;
  }
}

TEST(VtAlgebraTest, SwappingRecordsAcrossRangesIsDetected) {
  // A malicious SP cannot satisfy the token by substituting a record from
  // outside the range, even one from the same table.
  RecordCodec codec(kRecSize);
  std::vector<Record> in_range, out_of_range;
  for (uint64_t id = 1; id <= 10; ++id) {
    in_range.push_back(codec.MakeRecord(id, uint32_t(100 + id)));
    out_of_range.push_back(codec.MakeRecord(100 + id, uint32_t(900 + id)));
  }
  crypto::Digest vt = core::Client::ResultXor(in_range, codec);

  std::vector<Record> swapped = in_range;
  swapped[3] = out_of_range[3];
  EXPECT_FALSE(core::Client::VerifyResult(swapped, vt, codec).ok());
}

TEST(VtAlgebraTest, PayloadBitFlipChangesToken) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records{codec.MakeRecord(1, 10)};
  crypto::Digest vt = core::Client::ResultXor(records, codec);
  for (size_t byte : {0u, 7u, 20u, 51u}) {
    std::vector<Record> tampered = records;
    tampered[0].payload[byte] ^= 0x01;
    EXPECT_FALSE(core::Client::VerifyResult(tampered, vt, codec).ok())
        << "byte " << byte;
  }
}

TEST(VtAlgebraTest, PairCancellationRequiresIdenticalRecords) {
  // XOR-cancellation (adding a record twice) only "works" when the very
  // same bytes appear twice — which the client can reject by checking for
  // duplicate ids; different records never cancel.
  RecordCodec codec(kRecSize);
  Record a = codec.MakeRecord(1, 10);
  Record b = codec.MakeRecord(2, 10);
  std::vector<Record> honest{a};
  crypto::Digest vt = core::Client::ResultXor(honest, codec);
  std::vector<Record> padded{a, b, b};
  // b ^ b cancels: the multiset {a, b, b} has the same XOR as {a}.
  EXPECT_TRUE(core::Client::VerifyResult(padded, vt, codec).ok());
  // ...but {a, b, b'} with b' != b never matches.
  Record b_prime = b;
  b_prime.payload[0] ^= 1;
  std::vector<Record> broken{a, b, b_prime};
  EXPECT_FALSE(core::Client::VerifyResult(broken, vt, codec).ok());
}

TEST(VtAlgebraTest, EndToEndDuplicatePairAttackVisibility) {
  // The XOR check alone admits even-multiplicity padding (previous test);
  // the paper's client can additionally reject duplicate record ids. Verify
  // the library exposes enough information to do so.
  RecordCodec codec(kRecSize);
  Record a = codec.MakeRecord(1, 10);
  Record b = codec.MakeRecord(2, 11);
  std::vector<Record> padded{a, b, b};
  std::map<uint64_t, int> id_count;
  for (const auto& r : padded) ++id_count[r.id];
  bool has_duplicate_ids = false;
  for (auto& [id, n] : id_count) has_duplicate_ids |= (n > 1);
  EXPECT_TRUE(has_duplicate_ids);
}

}  // namespace
}  // namespace sae
