// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Differential parity harness for the crypto backends: every accelerated
// kernel (SHA-NI, AVX2 multi-buffer, Montgomery modexp, RSA-CRT signing)
// must emit exactly the bytes the scalar reference path emits, over
// randomized inputs that hit every dispatch edge — empty and 1-byte
// messages, block boundaries, multi-megabyte streams, unaligned buffers,
// mixed-length batches, and BigInt operands of randomized widths. The
// scalar path is selected in-process through Backend::set_force_scalar, so
// one binary compares both backends on identical inputs.
//
// On hardware without SHA-NI/AVX2 (or with SAE_FORCE_SCALAR set) both runs
// take the scalar path and the tests degrade to self-consistency checks —
// still meaningful for HashMany-vs-HashOne and CRT-vs-direct parity.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/backend.h"
#include "crypto/bigint.h"
#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "sigchain/sig_chain.h"
#include "util/hex.h"
#include "util/random.h"

namespace sae::crypto {
namespace {

// Restores accelerated dispatch when a test exits, even on failure.
class ScopedDispatch {
 public:
  ScopedDispatch() : saved_(Backend::Instance().force_scalar()) {}
  ~ScopedDispatch() { Backend::Instance().set_force_scalar(saved_); }

 private:
  bool saved_;
};

std::vector<uint8_t> RandomBytes(Rng* rng, size_t len) {
  std::vector<uint8_t> out(len);
  for (size_t i = 0; i < len; ++i) out[i] = uint8_t(rng->Next());
  return out;
}

std::string Hex(const Digest& d) {
  return HexEncode(d.bytes.data(), d.bytes.size());
}

// The dispatch-sensitive lengths: empty, 1 byte, around the 55/56 padding
// split, the 64-byte block boundary, two blocks, and past the 64 KiB mark.
const size_t kEdgeLens[] = {0,  1,   2,   54,  55,  56,  57,
                            63, 64,  65,  118, 119, 120, 127,
                            128, 129, 443, 500, 4096, 65536, 65537,
                            3 * 65536 + 11};

TEST(HashParityTest, EdgeLengthsMatchScalar) {
  ScopedDispatch guard;
  Backend& backend = Backend::Instance();
  Rng rng(0x5EED'0001);
  for (HashScheme scheme : {HashScheme::kSha1, HashScheme::kSha256Trunc}) {
    for (size_t len : kEdgeLens) {
      std::vector<uint8_t> msg = RandomBytes(&rng, len);
      backend.set_force_scalar(false);
      Digest accel = ComputeDigest(msg.data(), msg.size(), scheme);
      backend.set_force_scalar(true);
      Digest scalar = ComputeDigest(msg.data(), msg.size(), scheme);
      EXPECT_EQ(Hex(accel), Hex(scalar))
          << "scheme=" << int(scheme) << " len=" << len;
    }
  }
}

TEST(HashParityTest, RandomLengthsAndAlignments) {
  ScopedDispatch guard;
  Backend& backend = Backend::Instance();
  Rng rng(0x5EED'0002);
  // A shared arena so messages start at randomized (often odd) offsets:
  // the kernels must not assume 4/16-byte alignment.
  std::vector<uint8_t> arena = RandomBytes(&rng, 1 << 18);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.NextBounded(4096);
    if (trial % 17 == 0) len = 60'000 + rng.NextBounded(80'000);
    size_t offset = rng.NextBounded(64) | 1;  // odd start
    ASSERT_LE(offset + len, arena.size());
    HashScheme scheme =
        trial % 2 == 0 ? HashScheme::kSha1 : HashScheme::kSha256Trunc;
    backend.set_force_scalar(false);
    Digest accel = ComputeDigest(arena.data() + offset, len, scheme);
    backend.set_force_scalar(true);
    Digest scalar = ComputeDigest(arena.data() + offset, len, scheme);
    EXPECT_EQ(Hex(accel), Hex(scalar))
        << "trial=" << trial << " len=" << len << " offset=" << offset;
  }
}

TEST(HashParityTest, BatchedMatchesSingles) {
  ScopedDispatch guard;
  Backend& backend = Backend::Instance();
  Rng rng(0x5EED'0003);
  for (int trial = 0; trial < 40; ++trial) {
    // Mixed-length batches exercise the equal-length-run grouping: runs of
    // a common length (multi-buffer lanes) interleaved with singletons,
    // empty messages, and the occasional >64 KiB stream.
    size_t count = 1 + rng.NextBounded(40);
    std::vector<std::vector<uint8_t>> messages;
    for (size_t i = 0; i < count; ++i) {
      size_t len;
      switch (rng.NextBounded(4)) {
        case 0: len = 500; break;                       // equal-length run
        case 1: len = rng.NextBounded(130); break;      // short tail cases
        case 2: len = 64 * rng.NextBounded(5); break;   // block multiples
        default: len = rng.NextBounded(70'000); break;  // long streams
      }
      messages.push_back(RandomBytes(&rng, len));
    }
    std::vector<ByteSpan> spans;
    for (const auto& m : messages) {
      spans.push_back(ByteSpan{m.data(), m.size()});
    }
    HashScheme scheme =
        trial % 2 == 0 ? HashScheme::kSha1 : HashScheme::kSha256Trunc;

    backend.set_force_scalar(false);
    std::vector<Digest> batched(count);
    ComputeDigests(spans.data(), count, batched.data(), scheme);

    backend.set_force_scalar(true);
    for (size_t i = 0; i < count; ++i) {
      Digest single =
          ComputeDigest(messages[i].data(), messages[i].size(), scheme);
      EXPECT_EQ(Hex(batched[i]), Hex(single))
          << "trial=" << trial << " i=" << i
          << " len=" << messages[i].size();
    }
  }
}

TEST(HashParityTest, CombineDigestsMatchesScalar) {
  ScopedDispatch guard;
  Backend& backend = Backend::Instance();
  Rng rng(0x5EED'0004);
  for (size_t count : {size_t(0), size_t(1), size_t(2), size_t(127),
                       size_t(128), size_t(1000)}) {
    std::vector<Digest> children(count);
    for (size_t i = 0; i < count; ++i) {
      uint64_t x = rng.Next();
      children[i] = ComputeDigest(&x, sizeof(x));
    }
    for (HashScheme scheme :
         {HashScheme::kSha1, HashScheme::kSha256Trunc}) {
      backend.set_force_scalar(false);
      Digest accel = CombineDigests(children.data(), count, scheme);
      backend.set_force_scalar(true);
      Digest scalar = CombineDigests(children.data(), count, scheme);
      EXPECT_EQ(Hex(accel), Hex(scalar)) << "count=" << count;
    }
  }
}

// --- BigInt / modexp -----------------------------------------------------------

BigInt RandomBigInt(Rng* rng, size_t bits) {
  size_t bytes = (bits + 7) / 8;
  std::vector<uint8_t> raw = RandomBytes(rng, bytes);
  if (bits % 8 != 0) raw[0] &= uint8_t((1u << (bits % 8)) - 1);
  return BigInt::FromBytes(raw.data(), raw.size());
}

TEST(ModExpParityTest, RandomWidthsMatchScalarReference) {
  ScopedDispatch guard;
  Backend::Instance().set_force_scalar(false);
  Rng rng(0x5EED'0005);
  for (int trial = 0; trial < 120; ++trial) {
    // Widths sweep the Montgomery gate: <64-bit moduli stay scalar, wider
    // odd moduli take the CIOS ladder at 1..33 limbs.
    size_t mod_bits = 33 + rng.NextBounded(1100);
    BigInt m = RandomBigInt(&rng, mod_bits);
    if (m.IsZero()) continue;
    if (!m.IsOdd()) m = BigInt::Add(m, BigInt(1));
    BigInt base = RandomBigInt(&rng, 8 + rng.NextBounded(mod_bits + 64));
    BigInt exp = RandomBigInt(&rng, rng.NextBounded(mod_bits + 32));
    BigInt fast = BigInt::ModPow(base, exp, m);
    BigInt reference = BigInt::ModPowScalar(base, exp, m);
    EXPECT_TRUE(fast == reference)
        << "trial=" << trial << " mod_bits=" << mod_bits;
  }
}

TEST(ModExpParityTest, EvenModulusAndEdgeOperands) {
  ScopedDispatch guard;
  Backend::Instance().set_force_scalar(false);
  // Even moduli must route around Montgomery; zero/one operands hit the
  // window-ladder base cases.
  BigInt m_even(1 << 20);
  BigInt m_odd = BigInt::Add(m_even, BigInt(1));
  for (const BigInt& m : {m_even, m_odd}) {
    for (uint64_t b : {uint64_t(0), uint64_t(1), uint64_t(2), ~uint64_t(0)}) {
      for (uint64_t e : {uint64_t(0), uint64_t(1), uint64_t(2),
                         uint64_t(65537)}) {
        BigInt fast = BigInt::ModPow(BigInt(b), BigInt(e), m);
        BigInt reference =
            BigInt::ModPowScalar(BigInt(b), BigInt(e), m);
        EXPECT_TRUE(fast == reference) << "b=" << b << " e=" << e;
      }
    }
  }
}

// --- Montgomery context --------------------------------------------------------

TEST(MontgomeryParityTest, ProductChainsMatchDivisionFold) {
  ScopedDispatch guard;
  Backend::Instance().set_force_scalar(false);
  Rng rng(0x5EED'0008);
  int exercised = 0;
  for (int trial = 0; trial < 60; ++trial) {
    size_t mod_bits = 96 + rng.NextBounded(1000);
    BigInt m = RandomBigInt(&rng, mod_bits);
    if (m.BitLength() < 65) continue;
    if (!m.IsOdd()) m = BigInt::Add(m, BigInt(1));
    Montgomery mont(m);
    if (!mont.usable()) continue;  // platform without __int128
    ++exercised;
    size_t count = 1 + rng.NextBounded(20);
    Montgomery::Value acc = mont.One();
    BigInt reference(1);
    for (size_t i = 0; i < count; ++i) {
      BigInt x = RandomBigInt(&rng, 8 + rng.NextBounded(mod_bits + 64));
      Montgomery::Value xm = mont.ToMont(x);
      // To/from the domain must be the identity on reduced values.
      EXPECT_TRUE(mont.FromMont(xm) == BigInt::Mod(x, m))
          << "trial=" << trial << " i=" << i;
      mont.MulInPlace(&acc, xm);
      reference = BigInt::Mod(
          BigInt::Mul(reference, BigInt::Mod(x, m)), m);
    }
    EXPECT_TRUE(mont.FromMont(acc) == reference)
        << "trial=" << trial << " count=" << count;
    // Squaring through the aliased in-place form.
    mont.MulInPlace(&acc, acc);
    EXPECT_TRUE(mont.FromMont(acc) ==
                BigInt::Mod(BigInt::Mul(reference, reference), m))
        << "trial=" << trial;
  }
  if (exercised == 0) GTEST_SKIP() << "Montgomery context unusable here";
}

TEST(MontgomeryParityTest, UnusableGates) {
  ScopedDispatch guard;
  Backend& backend = Backend::Instance();
  Rng rng(0x5EED'0009);
  BigInt odd_wide = RandomBigInt(&rng, 512);
  if (!odd_wide.IsOdd()) odd_wide = BigInt::Add(odd_wide, BigInt(1));
  // Forced-scalar processes must never take the Montgomery product path:
  // that is exactly what the differential parity runs pin against.
  backend.set_force_scalar(true);
  EXPECT_FALSE(Montgomery(odd_wide).usable());
  backend.set_force_scalar(false);
  // Even and single-limb moduli route around it too.
  EXPECT_FALSE(Montgomery(BigInt::Add(odd_wide, BigInt(1))).usable());
  EXPECT_FALSE(Montgomery(BigInt(12345)).usable());
}

// --- batched chain digests -----------------------------------------------------

TEST(ChainDigestParityTest, BatchedChainMatchesPerTriple) {
  ScopedDispatch guard;
  Backend& backend = Backend::Instance();
  for (size_t count : {size_t(0), size_t(1), size_t(2), size_t(3), size_t(4),
                       size_t(257)}) {
    std::vector<Digest> ds(count);
    for (size_t i = 0; i < count; ++i) {
      ds[i] = ComputeDigest(&i, sizeof(i));
    }
    for (HashScheme scheme : {HashScheme::kSha1, HashScheme::kSha256Trunc}) {
      backend.set_force_scalar(false);
      std::vector<Digest> batched = sigchain::ChainDigests(ds, scheme);
      backend.set_force_scalar(true);
      if (count < 3) {
        EXPECT_TRUE(batched.empty()) << "count=" << count;
        continue;
      }
      ASSERT_EQ(batched.size(), count - 2);
      for (size_t k = 1; k + 1 < count; ++k) {
        EXPECT_EQ(Hex(batched[k - 1]),
                  Hex(sigchain::ChainDigest(ds[k - 1], ds[k], ds[k + 1],
                                            scheme)))
            << "count=" << count << " k=" << k;
      }
    }
  }
}

// --- RSA -----------------------------------------------------------------------

TEST(RsaParityTest, CrtSignaturesMatchScalarPath) {
  ScopedDispatch guard;
  Backend& backend = Backend::Instance();
  Rng rng(0x5EED'0006);
  for (size_t modulus_bits : {size_t(512), size_t(768), size_t(1024)}) {
    RsaPrivateKey key = RsaGenerateKey(&rng, modulus_bits);
    ASSERT_TRUE(key.HasCrt());
    for (int trial = 0; trial < 6; ++trial) {
      uint64_t nonce = rng.Next();
      Digest digest = ComputeDigest(&nonce, sizeof(nonce));
      backend.set_force_scalar(false);
      RsaSignature fast = RsaSignDigest(key, digest);
      backend.set_force_scalar(true);
      RsaSignature reference = RsaSignDigest(key, digest);
      EXPECT_EQ(fast, reference)
          << "modulus_bits=" << modulus_bits << " trial=" << trial;
      // Cross-verify: each backend's signature must satisfy the other
      // backend's verifier.
      EXPECT_TRUE(RsaVerifyDigest(key.PublicKey(), digest, fast).ok());
      backend.set_force_scalar(false);
      EXPECT_TRUE(RsaVerifyDigest(key.PublicKey(), digest, reference).ok());
    }
  }
}

TEST(RsaParityTest, KeysWithoutCrtStillSign) {
  ScopedDispatch guard;
  Backend::Instance().set_force_scalar(false);
  Rng rng(0x5EED'0007);
  RsaPrivateKey key = RsaGenerateKey(&rng, 512);
  RsaPrivateKey bare{key.n, key.e, key.d, BigInt(), BigInt(),
                     BigInt(), BigInt(), BigInt()};
  ASSERT_FALSE(bare.HasCrt());
  Digest digest = ComputeDigest("no-crt", 6);
  EXPECT_EQ(RsaSignDigest(bare, digest), RsaSignDigest(key, digest));
}

// --- dispatch plumbing ---------------------------------------------------------

TEST(BackendTest, ForceScalarFlipsKernelNames) {
  ScopedDispatch guard;
  Backend& backend = Backend::Instance();
  backend.set_force_scalar(true);
  EXPECT_STREQ(backend.hash_kernel(), "scalar");
  EXPECT_STREQ(backend.modexp_kernel(), "scalar");
  EXPECT_FALSE(backend.accelerated_hash());
  backend.set_force_scalar(false);
  if (backend.accelerated_hash()) {
    EXPECT_TRUE(std::strcmp(backend.hash_kernel(), "sha-ni") == 0 ||
                std::strcmp(backend.hash_kernel(), "avx2-x8") == 0);
  } else {
    EXPECT_STREQ(backend.hash_kernel(), "scalar");
  }
}

}  // namespace
}  // namespace sae::crypto
