// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Tests for the extensions beyond the paper's core: the multi-attribute
// trusted entity and the network/response-time model.

#include <gtest/gtest.h>

#include <map>

#include "core/client.h"
#include "core/multi_attr.h"
#include "sim/network.h"
#include "util/codec.h"

namespace sae {
namespace {

using core::AttributeSpec;
using core::MultiAttrTrustedEntity;
using core::Record;
using storage::RecordCodec;

constexpr size_t kRecSize = 64;

// Schema: attribute "price" is record.key; attribute "weight" is packed
// little-endian into the first payload bytes.
Record MakeItem(uint64_t id, uint32_t price, uint32_t weight) {
  RecordCodec codec(kRecSize);
  Record r = codec.MakeRecord(id, price);
  EncodeU32(r.payload.data(), weight);
  return r;
}

uint32_t WeightOf(const Record& r) { return DecodeU32(r.payload.data()); }

class MultiAttrTest : public ::testing::Test {
 protected:
  MultiAttrTest()
      : te_({AttributeSpec{"price", [](const Record& r) { return r.key; }},
             AttributeSpec{"weight", WeightOf}},
            MultiAttrTrustedEntity::Options{kRecSize,
                                            crypto::HashScheme::kSha1, 512}) {
    for (uint64_t id = 1; id <= 300; ++id) {
      records_.push_back(
          MakeItem(id, uint32_t(id * 10), uint32_t(3000 - id * 7)));
    }
    SAE_CHECK_OK(te_.LoadDataset(records_));
  }

  // Reference result for a range on a given extractor.
  std::vector<Record> Expected(const std::function<uint32_t(const Record&)>& f,
                               uint32_t lo, uint32_t hi) const {
    std::vector<Record> out;
    for (const auto& r : records_) {
      uint32_t k = f(r);
      if (k >= lo && k <= hi) out.push_back(r);
    }
    return out;
  }

  MultiAttrTrustedEntity te_;
  std::vector<Record> records_;
  RecordCodec codec_{kRecSize};
};

TEST_F(MultiAttrTest, AttributeNames) {
  auto names = te_.AttributeNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "price");
  EXPECT_EQ(names[1], "weight");
}

TEST_F(MultiAttrTest, TokensVerifyOnBothAttributes) {
  auto price_results =
      Expected([](const Record& r) { return r.key; }, 500, 1500);
  auto vt = te_.GenerateVt("price", 500, 1500);
  ASSERT_TRUE(vt.ok());
  EXPECT_TRUE(
      core::Client::VerifyResult(price_results, vt.value(), codec_).ok());

  auto weight_results = Expected(WeightOf, 1000, 2000);
  auto wvt = te_.GenerateVt("weight", 1000, 2000);
  ASSERT_TRUE(wvt.ok());
  EXPECT_TRUE(
      core::Client::VerifyResult(weight_results, wvt.value(), codec_).ok());
  // The two attributes select different subsets.
  EXPECT_NE(price_results.size(), weight_results.size());
}

TEST_F(MultiAttrTest, UnknownAttributeRejected) {
  EXPECT_EQ(te_.GenerateVt("color", 0, 10).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MultiAttrTest, TamperedResultFailsOnEitherAttribute) {
  auto results = Expected(WeightOf, 1000, 2000);
  ASSERT_FALSE(results.empty());
  auto vt = te_.GenerateVt("weight", 1000, 2000).ValueOrDie();
  results.pop_back();
  EXPECT_FALSE(core::Client::VerifyResult(results, vt, codec_).ok());
}

TEST_F(MultiAttrTest, UpdatesMaintainAllTrees) {
  Record fresh = MakeItem(9999, 1234, 1234);
  ASSERT_TRUE(te_.InsertRecord(fresh).ok());
  records_.push_back(fresh);

  // Both attribute tokens reflect the insert.
  for (auto [attr, f] : std::vector<
           std::pair<std::string, std::function<uint32_t(const Record&)>>>{
           {"price", [](const Record& r) { return r.key; }},
           {"weight", WeightOf}}) {
    auto vt = te_.GenerateVt(attr, 1000, 1500).ValueOrDie();
    EXPECT_TRUE(
        core::Client::VerifyResult(Expected(f, 1000, 1500), vt, codec_).ok())
        << attr;
  }

  ASSERT_TRUE(te_.DeleteRecord(fresh).ok());
  records_.pop_back();
  auto vt = te_.GenerateVt("price", 1000, 1500).ValueOrDie();
  EXPECT_TRUE(core::Client::VerifyResult(
                  Expected([](const Record& r) { return r.key; }, 1000, 1500),
                  vt, codec_)
                  .ok());
}

TEST_F(MultiAttrTest, StorageScalesWithAttributeCount) {
  MultiAttrTrustedEntity single(
      {AttributeSpec{"price", [](const Record& r) { return r.key; }}},
      MultiAttrTrustedEntity::Options{kRecSize, crypto::HashScheme::kSha1,
                                      512});
  ASSERT_TRUE(single.LoadDataset(records_).ok());
  EXPECT_GT(te_.StorageBytes(), single.StorageBytes());
  EXPECT_LT(te_.StorageBytes(), single.StorageBytes() * 3);
}

// --- network model ---------------------------------------------------------------

TEST(NetworkModelTest, TransferCombinesLatencyAndBandwidth) {
  sim::NetworkModel net{10.0, 8.0};  // 10ms, 8 Mbit/s = 1000 bytes/ms
  EXPECT_DOUBLE_EQ(net.TransferMs(0), 10.0);
  EXPECT_NEAR(net.TransferMs(1000), 11.0, 1e-9);
  EXPECT_NEAR(net.TransferMs(100000), 110.0, 1e-9);
}

TEST(NetworkModelTest, SaeTakesSlowerOfParallelPaths) {
  sim::NetworkModel net{10.0, 8.0};
  // SP path dominates.
  double r1 = sim::SaeResponseMs(net, 100.0, 1.0, 1000, 21, 9, 0.5);
  EXPECT_NEAR(r1, (10 + 0.009) + 100 + (10 + 1.0) + 0.5, 1e-2);
  // TE path dominates when the SP is instant.
  double r2 = sim::SaeResponseMs(net, 0.0, 500.0, 0, 21, 9, 0.5);
  EXPECT_NEAR(r2, (10 + 0.009) + 500 + (10 + 0.021) + 0.5, 1e-2);
}

TEST(NetworkModelTest, TomPaysForVoBytes) {
  sim::NetworkModel net{10.0, 8.0};
  double slim = sim::TomResponseMs(net, 50.0, 1000, 0, 9, 0.5);
  double bulky = sim::TomResponseMs(net, 50.0, 1000, 10000, 9, 0.5);
  EXPECT_NEAR(bulky - slim, 10.0, 1e-9);  // 10 KB at 1 B/us
}

TEST(NetworkModelTest, SaeBeatsTomWhenVoDominates) {
  // Same processing, same result size; TOM additionally ships a 10 KB VO,
  // SAE a 21-byte token on a parallel path.
  sim::NetworkModel net{20.0, 8.0};
  double sae = sim::SaeResponseMs(net, 80.0, 30.0, 50000, 21, 9, 1.0);
  double tom = sim::TomResponseMs(net, 80.0, 50000, 10000, 9, 1.0);
  EXPECT_LT(sae, tom);
}

}  // namespace
}  // namespace sae
