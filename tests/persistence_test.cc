// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Persistence tests: every disk structure (B+-tree, MB-tree, XB-tree, heap
// file, table) is built on a FilePageStore, snapshotted, torn down, and
// reopened from the file — queries, verification material and invariants
// must survive the restart. This is the "SP restarts without the DO
// re-shipping the dataset" story.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "btree/bplus_tree.h"
#include "dbms/table.h"
#include "mbtree/mb_tree.h"
#include "storage/page_store.h"
#include "util/codec.h"
#include "xbtree/xb_tree.h"

namespace sae {
namespace {

using storage::BufferPool;
using storage::FilePageStore;
using storage::Record;
using storage::RecordCodec;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/saedb_persist_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(PersistenceTest, BPlusTreeSurvivesRestart) {
  ByteWriter snapshot;
  {
    auto store = FilePageStore::Create(path_).ValueOrDie();
    BufferPool pool(store.get(), 64);
    btree::BPlusTreeOptions options;
    options.max_leaf_entries = 8;
    options.max_internal_keys = 8;
    auto tree = btree::BPlusTree::Create(&pool, options).ValueOrDie();
    for (uint32_t k = 0; k < 500; ++k) {
      ASSERT_TRUE(tree->Insert(k * 3, k).ok());
    }
    tree->WriteSnapshot(&snapshot);
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  auto store = FilePageStore::Open(path_).ValueOrDie();
  BufferPool pool(store.get(), 64);
  ByteReader reader(snapshot.bytes().data(), snapshot.size());
  auto tree = btree::BPlusTree::OpenSnapshot(&pool, &reader).ValueOrDie();
  EXPECT_EQ(tree->size(), 500u);
  ASSERT_TRUE(tree->Validate().ok());

  std::vector<btree::BTreeEntry> out;
  ASSERT_TRUE(tree->RangeSearch(300, 600, &out).ok());
  EXPECT_EQ(out.size(), 101u);

  // The reopened tree accepts further updates.
  ASSERT_TRUE(tree->Insert(1, 9999).ok());
  ASSERT_TRUE(tree->Delete(0, 0).ok());
  ASSERT_TRUE(tree->Validate().ok());
}

TEST_F(PersistenceTest, MbTreeSurvivesRestartWithSameRootDigest) {
  ByteWriter snapshot;
  crypto::Digest digest_before;
  {
    auto store = FilePageStore::Create(path_).ValueOrDie();
    BufferPool pool(store.get(), 64);
    mbtree::MbTreeOptions options;
    options.max_leaf_entries = 6;
    options.max_internal_keys = 5;
    auto tree = mbtree::MbTree::Create(&pool, options).ValueOrDie();
    for (uint64_t id = 1; id <= 200; ++id) {
      ASSERT_TRUE(tree->Insert(mbtree::MbEntry{
                          uint32_t(id * 7), id,
                          crypto::ComputeDigest(&id, sizeof(id))})
                      .ok());
    }
    digest_before = tree->root_digest();
    tree->WriteSnapshot(&snapshot);
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  auto store = FilePageStore::Open(path_).ValueOrDie();
  BufferPool pool(store.get(), 64);
  ByteReader reader(snapshot.bytes().data(), snapshot.size());
  auto tree = mbtree::MbTree::OpenSnapshot(&pool, &reader).ValueOrDie();
  EXPECT_EQ(tree->root_digest(), digest_before);
  ASSERT_TRUE(tree->Validate().ok());
  std::vector<mbtree::MbEntry> out;
  ASSERT_TRUE(tree->RangeSearch(70, 140, &out).ok());
  EXPECT_EQ(out.size(), 11u);
}

TEST_F(PersistenceTest, MbTreeSnapshotDetectsTamperedPages) {
  ByteWriter snapshot;
  {
    auto store = FilePageStore::Create(path_).ValueOrDie();
    BufferPool pool(store.get(), 64);
    auto tree = mbtree::MbTree::Create(&pool).ValueOrDie();
    for (uint64_t id = 1; id <= 50; ++id) {
      ASSERT_TRUE(tree->Insert(mbtree::MbEntry{
                          uint32_t(id), id,
                          crypto::ComputeDigest(&id, sizeof(id))})
                      .ok());
    }
    tree->WriteSnapshot(&snapshot);
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  // Corrupt a byte in the (single-node) tree's root page on disk.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 100, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }

  auto store = FilePageStore::Open(path_).ValueOrDie();
  BufferPool pool(store.get(), 64);
  ByteReader reader(snapshot.bytes().data(), snapshot.size());
  auto reopened = mbtree::MbTree::OpenSnapshot(&pool, &reader);
  // Either the node fails to parse or the root digest no longer matches.
  EXPECT_FALSE(reopened.ok());
}

TEST_F(PersistenceTest, XbTreeSurvivesRestartAndKeepsVt) {
  ByteWriter snapshot;
  crypto::Digest vt_before;
  {
    auto store = FilePageStore::Create(path_).ValueOrDie();
    BufferPool pool(store.get(), 64);
    xbtree::XbTreeOptions options;
    options.max_entries = 5;
    auto tree = xbtree::XbTree::Create(&pool, options).ValueOrDie();
    for (uint64_t id = 1; id <= 300; ++id) {
      ASSERT_TRUE(tree->Insert(uint32_t(id % 90), id,
                               crypto::ComputeDigest(&id, sizeof(id)))
                      .ok());
    }
    vt_before = tree->GenerateVT(10, 60).ValueOrDie();
    tree->WriteSnapshot(&snapshot);
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  auto store = FilePageStore::Open(path_).ValueOrDie();
  BufferPool pool(store.get(), 64);
  ByteReader reader(snapshot.bytes().data(), snapshot.size());
  auto tree = xbtree::XbTree::OpenSnapshot(&pool, &reader).ValueOrDie();
  EXPECT_EQ(tree->size(), 300u);
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->GenerateVT(10, 60).ValueOrDie(), vt_before);

  // Updates after reopen keep the aggregates consistent.
  uint64_t id = 9999;
  ASSERT_TRUE(
      tree->Insert(42, id, crypto::ComputeDigest(&id, sizeof(id))).ok());
  ASSERT_TRUE(tree->Delete(42, id).ok());
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->GenerateVT(10, 60).ValueOrDie(), vt_before);
}

TEST_F(PersistenceTest, HeapFileSurvivesRestart) {
  ByteWriter snapshot;
  RecordCodec codec(100);
  std::vector<storage::Rid> rids;
  {
    auto store = FilePageStore::Create(path_).ValueOrDie();
    BufferPool pool(store.get(), 64);
    storage::HeapFile heap(&pool, 100);
    for (uint64_t id = 1; id <= 120; ++id) {
      auto bytes = codec.Serialize(codec.MakeRecord(id, uint32_t(id)));
      rids.push_back(heap.Insert(bytes.data()).ValueOrDie());
    }
    ASSERT_TRUE(heap.Delete(rids[5]).ok());
    heap.WriteSnapshot(&snapshot);
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  auto store = FilePageStore::Open(path_).ValueOrDie();
  BufferPool pool(store.get(), 64);
  ByteReader reader(snapshot.bytes().data(), snapshot.size());
  auto heap = storage::HeapFile::OpenSnapshot(&pool, &reader).ValueOrDie();
  EXPECT_EQ(heap->size(), 119u);
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(heap->Get(rids[7], out.data()).ok());
  EXPECT_EQ(codec.Deserialize(out.data()).id, 8u);
  EXPECT_EQ(heap->Get(rids[5], out.data()).code(), StatusCode::kNotFound);

  // The freed slot is found again by new inserts.
  auto bytes = codec.Serialize(codec.MakeRecord(999, 999));
  EXPECT_EQ(heap->Insert(bytes.data()).ValueOrDie(), rids[5]);
}

TEST_F(PersistenceTest, TableSurvivesRestart) {
  std::string heap_path = path_ + ".heap";
  std::remove(heap_path.c_str());
  ByteWriter snapshot;
  RecordCodec codec(100);
  {
    auto index_store = FilePageStore::Create(path_).ValueOrDie();
    auto heap_store = FilePageStore::Create(heap_path).ValueOrDie();
    BufferPool index_pool(index_store.get(), 64);
    BufferPool heap_pool(heap_store.get(), 64);
    auto table =
        dbms::Table::Create(&index_pool, &heap_pool, 100).ValueOrDie();
    std::vector<Record> records;
    for (uint64_t id = 1; id <= 400; ++id) {
      records.push_back(codec.MakeRecord(id, uint32_t(id * 2)));
    }
    ASSERT_TRUE(table->BulkLoad(records).ok());
    table->WriteSnapshot(&snapshot);
    ASSERT_TRUE(index_pool.FlushAll().ok());
    ASSERT_TRUE(heap_pool.FlushAll().ok());
  }

  auto index_store = FilePageStore::Open(path_).ValueOrDie();
  auto heap_store = FilePageStore::Open(heap_path).ValueOrDie();
  BufferPool index_pool(index_store.get(), 64);
  BufferPool heap_pool(heap_store.get(), 64);
  ByteReader reader(snapshot.bytes().data(), snapshot.size());
  auto table =
      dbms::Table::OpenSnapshot(&index_pool, &heap_pool, &reader)
          .ValueOrDie();
  EXPECT_EQ(table->size(), 400u);
  ASSERT_TRUE(table->index().Validate().ok());

  std::vector<Record> out;
  ASSERT_TRUE(table->RangeQuery(100, 200, &out).ok());
  EXPECT_EQ(out.size(), 51u);
  EXPECT_EQ(table->Get(123).ValueOrDie().key, 246u);

  // CRUD continues to work after reopen.
  ASSERT_TRUE(table->Delete(123).ok());
  ASSERT_TRUE(table->Insert(codec.MakeRecord(9001, 100)).ok());
  out.clear();
  ASSERT_TRUE(table->RangeQuery(100, 100, &out).ok());
  EXPECT_EQ(out.size(), 2u);  // id 50 (key 100) + the new record
  std::remove(heap_path.c_str());
}

TEST_F(PersistenceTest, SnapshotRejectsGarbage) {
  auto store = FilePageStore::Create(path_).ValueOrDie();
  BufferPool pool(store.get(), 64);
  std::vector<uint8_t> junk{1, 2, 3, 4, 5, 6, 7, 8};
  {
    ByteReader r(junk);
    EXPECT_FALSE(btree::BPlusTree::OpenSnapshot(&pool, &r).ok());
  }
  {
    ByteReader r(junk);
    EXPECT_FALSE(mbtree::MbTree::OpenSnapshot(&pool, &r).ok());
  }
  {
    ByteReader r(junk);
    EXPECT_FALSE(xbtree::XbTree::OpenSnapshot(&pool, &r).ok());
  }
  {
    ByteReader r(junk);
    EXPECT_FALSE(storage::HeapFile::OpenSnapshot(&pool, &r).ok());
  }
}

TEST_F(PersistenceTest, FilePageStoreOpenRejectsMisalignedFile) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a page file", f);
    std::fclose(f);
  }
  EXPECT_FALSE(FilePageStore::Open(path_).ok());
}

TEST_F(PersistenceTest, HeapFileReopensWithPendingFreeListState) {
  // The gap the earlier heap test left open: restart with a file whose
  // free list is non-trivial — scattered holes on several pages AND one
  // page emptied completely — and prove the snapshot carries the whole
  // free-slot state, not just the live records.
  ByteWriter snapshot;
  RecordCodec codec(100);
  storage::HeapFile probe(nullptr, 100);
  const size_t per_page = probe.slots_per_page();
  const size_t total = per_page * 3 + 2;  // 4 pages, last nearly empty
  std::vector<storage::Rid> rids;
  std::vector<storage::Rid> freed;
  {
    auto store = FilePageStore::Create(path_).ValueOrDie();
    BufferPool pool(store.get(), 64);
    storage::HeapFile heap(&pool, 100);
    for (uint64_t id = 1; id <= total; ++id) {
      auto bytes = codec.Serialize(codec.MakeRecord(id, uint32_t(id)));
      rids.push_back(heap.Insert(bytes.data()).ValueOrDie());
    }
    // Empty the SECOND page completely...
    for (size_t i = per_page; i < 2 * per_page; ++i) {
      ASSERT_TRUE(heap.Delete(rids[i]).ok());
      freed.push_back(rids[i]);
    }
    // ...and punch scattered holes into the first and third.
    for (size_t i : {size_t(3), size_t(7), 2 * per_page + 1}) {
      ASSERT_TRUE(heap.Delete(rids[i]).ok());
      freed.push_back(rids[i]);
    }
    heap.WriteSnapshot(&snapshot);
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  auto store = FilePageStore::Open(path_).ValueOrDie();
  BufferPool pool(store.get(), 64);
  ByteReader reader(snapshot.bytes().data(), snapshot.size());
  auto heap = storage::HeapFile::OpenSnapshot(&pool, &reader).ValueOrDie();
  EXPECT_EQ(heap->size(), total - freed.size());
  EXPECT_EQ(heap->PageCount(), 4u);

  // Every freed slot reads as a hole, every survivor is intact.
  std::vector<uint8_t> out(100);
  for (storage::Rid rid : freed) {
    EXPECT_EQ(heap->Get(rid, out.data()).code(), StatusCode::kNotFound);
  }
  ASSERT_TRUE(heap->Get(rids[0], out.data()).ok());
  EXPECT_EQ(codec.Deserialize(out.data()).id, 1u);

  // The reopened free list hands every hole back before growing the file:
  // re-inserting exactly freed.size() records reuses exactly the freed
  // rids (as a set) and allocates no fifth page.
  std::vector<storage::Rid> reused;
  for (uint64_t id = 0; id < freed.size(); ++id) {
    auto bytes = codec.Serialize(codec.MakeRecord(5000 + id, 77));
    reused.push_back(heap->Insert(bytes.data()).ValueOrDie());
  }
  std::sort(freed.begin(), freed.end());
  std::sort(reused.begin(), reused.end());
  EXPECT_EQ(reused, freed);
  EXPECT_EQ(heap->PageCount(), 4u);
  EXPECT_EQ(heap->size(), total);
}

TEST_F(PersistenceTest, FilePageStoreRecoversFromPartiallyWrittenFinalPage) {
  // A power loss mid-page-write leaves a file whose final page is short.
  // The strict Open must keep rejecting it; OpenForRecovery must cut the
  // torn page and serve the complete ones unchanged.
  storage::Page page{};
  {
    auto store = FilePageStore::Create(path_).ValueOrDie();
    for (int i = 0; i < 3; ++i) {
      storage::PageId id = store->Allocate().ValueOrDie();
      std::fill(page.bytes(), page.bytes() + storage::kPageSize,
                uint8_t(40 + i));
      ASSERT_TRUE(store->Write(id, page).ok());
    }
    ASSERT_TRUE(store->Sync().ok());
  }
  {
    // Tear the file: half of a fourth page.
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::vector<uint8_t> torn(storage::kPageSize / 2, 0xEE);
    ASSERT_EQ(std::fwrite(torn.data(), 1, torn.size(), f), torn.size());
    std::fclose(f);
  }

  EXPECT_FALSE(FilePageStore::Open(path_).ok());

  bool truncated = false;
  auto store =
      FilePageStore::OpenForRecovery(path_, nullptr, &truncated).ValueOrDie();
  EXPECT_TRUE(truncated);
  EXPECT_EQ(store->LivePageCount(), 3u);
  for (storage::PageId id = 0; id < 3; ++id) {
    ASSERT_TRUE(store->Read(id, &page).ok());
    EXPECT_EQ(page.bytes()[0], uint8_t(40 + id));
    EXPECT_EQ(page.bytes()[storage::kPageSize - 1], uint8_t(40 + id));
  }
  // The torn page's id is reusable: the next allocation lands where the
  // garbage was and round-trips cleanly.
  storage::PageId fresh = store->Allocate().ValueOrDie();
  EXPECT_EQ(fresh, 3u);
  std::fill(page.bytes(), page.bytes() + storage::kPageSize, uint8_t(0x5A));
  ASSERT_TRUE(store->Write(fresh, page).ok());
  ASSERT_TRUE(store->Read(fresh, &page).ok());
  EXPECT_EQ(page.bytes()[0], 0x5Au);

  // A recovered-then-synced file is page-aligned again: strict Open now
  // accepts it.
  ASSERT_TRUE(store->Sync().ok());
  store.reset();
  EXPECT_TRUE(FilePageStore::Open(path_).ok());
}

}  // namespace
}  // namespace sae
