// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Concurrency suite for the thread-safe read path: the BufferPool under
// parallel readers, Channel sessions under parallel senders, and the
// QueryEngine fanning batches across one loaded SaeSystem / TomSystem.
// The engine runs must produce exactly the serial results and VTs, every
// per-query cost must compose into the batch aggregate, and the whole
// suite must be clean under ThreadSanitizer (the CI tsan job runs it).

#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/answer_cache.h"
#include "core/query_engine.h"
#include "core/system.h"
#include "sim/channel.h"
#include "storage/buffer_pool.h"
#include "storage/node_cache.h"
#include "storage/page_store.h"

namespace sae {
namespace {

using core::AttackMode;
using core::BatchQuery;
using core::QueryEngine;
using core::SaeSystem;
using core::TomSystem;
using storage::BufferPool;
using storage::PageId;
using storage::Record;
using storage::RecordCodec;

constexpr size_t kRecSize = 64;
constexpr size_t kThreads = 4;

std::vector<Record> SmallDataset(size_t n) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records;
  records.reserve(n);
  for (uint64_t id = 1; id <= n; ++id) {
    records.push_back(codec.MakeRecord(id, uint32_t(id * 10)));
  }
  return records;
}

std::vector<BatchQuery> MakeBatch(size_t count, uint32_t domain,
                                  AttackMode attack = AttackMode::kNone) {
  std::vector<BatchQuery> batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint32_t lo = uint32_t((i * 997) % domain);
    batch.push_back(BatchQuery{lo, lo + domain / 20, attack});
  }
  return batch;
}

// --- storage: BufferPool under concurrent readers ----------------------------

TEST(BufferPoolConcurrencyTest, ParallelFetchersSeeConsistentPages) {
  storage::InMemoryPageStore store;
  BufferPool pool(&store, 16);  // smaller than the page count: forces
                                // eviction churn under contention
  constexpr size_t kPages = 64;
  std::vector<PageId> ids;
  for (size_t i = 0; i < kPages; ++i) {
    auto ref = pool.New();
    ASSERT_TRUE(ref.ok());
    // Stamp the page with its id so readers can detect frame mixups.
    std::memcpy(ref.value().Mutable().bytes(), &i, sizeof(i));
    ids.push_back(ref.value().id());
  }
  ASSERT_TRUE(pool.FlushAll().ok());

  BufferPool::Stats before = pool.stats();
  constexpr size_t kFetchesPerThread = 2000;
  std::atomic<size_t> mismatches{0};
  std::atomic<uint64_t> thread_access_sum{0};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BufferPool::Stats start = pool.ThreadStats();
      uint64_t state = 0x9E3779B97F4A7C15ull * (t + 1);
      for (size_t i = 0; i < kFetchesPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        size_t pick = size_t(state >> 33) % kPages;
        auto ref = pool.Fetch(ids[pick]);
        ASSERT_TRUE(ref.ok());
        size_t stamp = 0;
        std::memcpy(&stamp, ref.value().Get().bytes(), sizeof(stamp));
        if (stamp != pick) mismatches.fetch_add(1);
      }
      thread_access_sum.fetch_add(
          (pool.ThreadStats() - start).accesses);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0u);
  BufferPool::Stats delta = pool.stats() - before;
  EXPECT_EQ(delta.accesses, kThreads * kFetchesPerThread);
  // The per-thread counters partition the global count exactly.
  EXPECT_EQ(thread_access_sum.load(), delta.accesses);
}

// --- sim: Channel sessions under concurrent senders --------------------------

TEST(ChannelConcurrencyTest, SessionsMeterPrivatelyAndGloballyAtomically) {
  sim::Channel channel("shared");
  constexpr size_t kSendsPerThread = 1000;

  std::vector<std::thread> threads;
  std::atomic<uint64_t> session_byte_sum{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::Channel::Session session = channel.OpenSession();
      for (size_t i = 0; i < kSendsPerThread; ++i) {
        session.SendBytes(t + 1);
      }
      EXPECT_EQ(session.messages(), kSendsPerThread);
      EXPECT_EQ(session.bytes(), kSendsPerThread * (t + 1));
      session_byte_sum.fetch_add(session.bytes());
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(channel.messages(), kThreads * kSendsPerThread);
  EXPECT_EQ(channel.total_bytes(), session_byte_sum.load());
}

// --- core: SAE batches through the QueryEngine -------------------------------

class SaeConcurrencyTest : public ::testing::Test {
 protected:
  SaeConcurrencyTest()
      : system_(SaeSystem::Options{kRecSize, crypto::HashScheme::kSha1, 256,
                                   256, 256, {}, {}, {}, {}}) {
    SAE_CHECK_OK(system_.Load(SmallDataset(2000)));
  }

  SaeSystem system_;
};

TEST_F(SaeConcurrencyTest, ThreadedBatchMatchesSerialRun) {
  std::vector<BatchQuery> batch = MakeBatch(48, 20000);

  // Serial baseline through the public single-query API.
  std::vector<SaeSystem::QueryOutcome> serial;
  for (const BatchQuery& q : batch) {
    auto outcome = system_.Query(q.request);
    ASSERT_TRUE(outcome.ok());
    serial.push_back(std::move(outcome.value()));
  }

  QueryEngine engine(QueryEngine::Options{kThreads});
  QueryEngine::SaeBatch threaded = engine.Run(&system_, batch);

  ASSERT_EQ(threaded.outcomes.size(), batch.size());
  EXPECT_EQ(threaded.stats.accepted, batch.size());
  EXPECT_EQ(threaded.stats.rejected, 0u);
  EXPECT_EQ(threaded.stats.failed, 0u);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(threaded.outcomes[i].ok()) << "query " << i;
    const SaeSystem::QueryOutcome& got = threaded.outcomes[i].value();
    EXPECT_TRUE(got.verification.ok()) << "query " << i;
    EXPECT_EQ(got.results, serial[i].results) << "query " << i;
    EXPECT_EQ(got.vt, serial[i].vt) << "query " << i;
  }
}

TEST_F(SaeConcurrencyTest, AggregatedCostsEqualSumOfPerQueryCosts) {
  std::vector<BatchQuery> batch = MakeBatch(48, 20000);

  BufferPool::Stats sp_index0 = system_.sp().index_pool_stats();
  BufferPool::Stats sp_heap0 = system_.sp().heap_pool_stats();
  BufferPool::Stats te0 = system_.te().pool_stats();

  QueryEngine engine(QueryEngine::Options{kThreads});
  QueryEngine::SaeBatch run = engine.Run(&system_, batch);

  core::QueryCosts sum;
  for (const auto& outcome : run.outcomes) {
    ASSERT_TRUE(outcome.ok());
    sum += outcome.value().costs;
  }
  EXPECT_EQ(run.stats.total.sp_index_accesses, sum.sp_index_accesses);
  EXPECT_EQ(run.stats.total.sp_heap_accesses, sum.sp_heap_accesses);
  EXPECT_EQ(run.stats.total.te_accesses, sum.te_accesses);
  EXPECT_EQ(run.stats.total.auth_bytes, sum.auth_bytes);
  EXPECT_EQ(run.stats.total.result_bytes, sum.result_bytes);

  // The per-thread attribution partitions the global pool counters: the
  // batch-wide pool deltas equal the summed per-query costs exactly.
  EXPECT_EQ((system_.sp().index_pool_stats() - sp_index0).accesses,
            sum.sp_index_accesses);
  EXPECT_EQ((system_.sp().heap_pool_stats() - sp_heap0).accesses,
            sum.sp_heap_accesses);
  EXPECT_EQ((system_.te().pool_stats() - te0).accesses, sum.te_accesses);
}

TEST_F(SaeConcurrencyTest, MaliciousQueriesAreRejectedUnderConcurrency) {
  // Interleave honest queries with every attack mode; each worker must
  // reach the right verdict for its own queries despite shared state.
  const AttackMode kModes[] = {
      AttackMode::kDropOne,      AttackMode::kDropAll,
      AttackMode::kInjectFake,   AttackMode::kTamperPayload,
      AttackMode::kTamperKey,    AttackMode::kDuplicateOne,
  };
  std::vector<BatchQuery> batch = MakeBatch(48, 20000);
  size_t attacked = 0;
  for (size_t i = 0; i < batch.size(); i += 2) {
    batch[i].attack = kModes[(i / 2) % (sizeof(kModes) / sizeof(kModes[0]))];
    ++attacked;
  }

  QueryEngine engine(QueryEngine::Options{kThreads});
  QueryEngine::SaeBatch run = engine.Run(&system_, batch);

  EXPECT_EQ(run.stats.rejected, attacked);
  EXPECT_EQ(run.stats.accepted, batch.size() - attacked);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(run.outcomes[i].ok());
    EXPECT_EQ(run.outcomes[i].value().verification.ok(),
              batch[i].attack == AttackMode::kNone)
        << "query " << i;
  }
}

TEST_F(SaeConcurrencyTest, EngineIsReusableAcrossBatches) {
  QueryEngine engine(QueryEngine::Options{2});
  for (int round = 0; round < 3; ++round) {
    QueryEngine::SaeBatch run = engine.Run(&system_, MakeBatch(10, 20000));
    EXPECT_EQ(run.stats.accepted, 10u);
  }
  // An inline engine (no workers) goes through the identical path.
  QueryEngine inline_engine;
  QueryEngine::SaeBatch run = inline_engine.Run(&system_, MakeBatch(4, 20000));
  EXPECT_EQ(run.stats.accepted, 4u);
}

// --- core: TOM batches through the QueryEngine -------------------------------

TEST(TomConcurrencyTest, ThreadedBatchMatchesSerialRun) {
  TomSystem::Options options;
  options.record_size = kRecSize;
  options.rsa_modulus_bits = 512;  // fast for tests
  TomSystem system(options);
  SAE_CHECK_OK(system.Load(SmallDataset(1500)));

  std::vector<BatchQuery> batch = MakeBatch(24, 15000);
  std::vector<TomSystem::QueryOutcome> serial;
  for (const BatchQuery& q : batch) {
    auto outcome = system.Query(q.request);
    ASSERT_TRUE(outcome.ok());
    serial.push_back(std::move(outcome.value()));
  }

  QueryEngine engine(QueryEngine::Options{kThreads});
  QueryEngine::TomBatch threaded = engine.Run(&system, batch);

  ASSERT_EQ(threaded.outcomes.size(), batch.size());
  EXPECT_EQ(threaded.stats.accepted, batch.size());
  core::QueryCosts sum;
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(threaded.outcomes[i].ok()) << "query " << i;
    const TomSystem::QueryOutcome& got = threaded.outcomes[i].value();
    EXPECT_TRUE(got.verification.ok()) << "query " << i;
    EXPECT_EQ(got.results, serial[i].results) << "query " << i;
    EXPECT_EQ(got.costs.auth_bytes, serial[i].costs.auth_bytes)
        << "query " << i;
    sum += got.costs;
  }
  EXPECT_EQ(threaded.stats.total.auth_bytes, sum.auth_bytes);
  EXPECT_EQ(threaded.stats.total.sp_index_accesses, sum.sp_index_accesses);
}

// --- caches: readers hammering, writers invalidating -------------------------
//
// The verified-path caches (hot-level node memos, epoch-keyed answer
// caches) sit on the shared read path, so cache fills race with cache hits
// and with writer-side invalidation. These tests drive that contention
// directly; TSan (the CI tsan job runs this binary) checks the locking.

TEST(CacheConcurrencyTest, HotNodeCacheSurvivesMixedLookupInsertInvalidate) {
  struct FakeNode {
    uint64_t stamp;
  };
  storage::HotNodeCache<FakeNode> cache({/*hot_levels=*/3, 32});
  constexpr uint32_t kPages = 64;
  std::atomic<bool> stop{false};
  std::atomic<size_t> corrupt{0};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x9E3779B97F4A7C15ull * (t + 1);
      for (size_t i = 0; i < 20000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        uint32_t id = uint32_t(state >> 33) % kPages;
        size_t depth = size_t(state >> 13) % 4;  // some uncacheable
        auto node = cache.Lookup(storage::PageId(id), depth);
        if (node == nullptr) {
          // A fill stores the page id as the stamp, so any reader can
          // detect a frame mixup or a torn entry.
          node = cache.Insert(storage::PageId(id), depth, FakeNode{id});
        }
        if (node->stamp != id) corrupt.fetch_add(1);
      }
    });
  }
  std::thread invalidator([&] {
    uint64_t state = 42;
    // The minimum sweep count keeps the invalidation assertion below
    // independent of scheduling: on a loaded single-core host this thread
    // may first run only after the readers finished and `stop` is set.
    size_t sweeps = 0;
    while (!stop.load() || sweeps < 256) {
      ++sweeps;
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      cache.Invalidate(storage::PageId(uint32_t(state >> 33) % kPages));
      if ((state & 0xFF) == 0) cache.Clear();
    }
  });
  for (auto& thread : threads) thread.join();
  stop.store(true);
  invalidator.join();

  EXPECT_EQ(corrupt.load(), 0u);
  storage::NodeCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.invalidations, 0u);
  EXPECT_LE(cache.size(), 32u);
}

TEST(CacheConcurrencyTest, AnswerCacheReplaysExactBytesUnderInvalidation) {
  core::AnswerCacheOptions options;
  options.max_entries = 24;  // below working set: eviction churn too
  core::AnswerCache cache(options);
  constexpr uint32_t kRanges = 48;
  std::atomic<bool> stop{false};
  std::atomic<size_t> corrupt{0};
  std::atomic<uint64_t> hit_count{0};

  auto key_for = [](uint32_t r) {
    core::AnswerCache::Key key;
    key.lo = r * 100;
    key.hi = r * 100 + 99;
    key.epoch = 7;
    return key;
  };
  auto bytes_for = [](uint32_t r) {
    return std::vector<uint8_t>{uint8_t(r), uint8_t(r >> 8), 0xAB};
  };

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0xC0FFEEull * (t + 1);
      for (size_t i = 0; i < 20000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        uint32_t r = uint32_t(state >> 33) % kRanges;
        auto hit = cache.Lookup(key_for(r));
        if (hit == nullptr) {
          cache.Insert(key_for(r), core::CachedAnswer{bytes_for(r), {}});
          continue;
        }
        hit_count.fetch_add(1);
        // A hit must replay the exact bytes inserted for this key even if
        // an InvalidateAll or an eviction races with the lookup.
        if (hit->answer_msg != bytes_for(r)) corrupt.fetch_add(1);
      }
    });
  }
  std::thread invalidator([&] {
    while (!stop.load()) {
      cache.InvalidateAll();
      std::this_thread::yield();
    }
  });
  for (auto& thread : threads) thread.join();
  stop.store(true);
  invalidator.join();

  EXPECT_EQ(corrupt.load(), 0u);
  core::AnswerCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, hit_count.load());
  EXPECT_GT(stats.invalidations, 0u);
  EXPECT_LE(cache.size(), options.max_entries);
}

// Readers replay a small hot set of verified queries (filling and hitting
// the SP answer cache, the TE VT memo, and the hot-node digest caches)
// while a writer inserts records — every insert bumps the epoch, flushes
// the answer caches, and invalidates digest entries along its update path.
// Every honest outcome must still verify: a torn cache entry or a stale
// digest surviving invalidation would surface as a verification failure.
template <typename System>
void RunCachedReadersVsWriter(System* system, size_t queries_per_reader) {
  RecordCodec codec(kRecSize);
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      std::ostringstream err;
      uint64_t state = 0x5EEDull * (t + 1);
      for (size_t i = 0; i < queries_per_reader; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        uint32_t lo = uint32_t(state >> 33) % 8 * 2500;  // 8 hot ranges
        auto outcome = system->ExecuteQuery(lo, lo + 2499);
        if (!outcome.ok()) {
          err << "query errored: " << outcome.status().ToString() << "; ";
        } else if (!outcome.value().verification.ok()) {
          err << "query [" << lo << "] rejected: "
              << outcome.value().verification.ToString() << "; ";
        }
      }
      errors[t] = err.str();
    });
  }
  std::thread writer([&] {
    for (uint64_t i = 0; i < 24; ++i) {
      SAE_CHECK_OK(
          system->Insert(codec.MakeRecord(500'000 + i, uint32_t(i * 793))));
    }
  });
  for (auto& thread : readers) thread.join();
  writer.join();
  for (const std::string& err : errors) EXPECT_EQ(err, "");
}

TEST(CacheConcurrencyTest, SaeCachedReadsVerifyDuringWrites) {
  SaeSystem system(SaeSystem::Options{kRecSize, crypto::HashScheme::kSha1,
                                      256, 256, 256, {}, {}, {}, {}});
  SAE_CHECK_OK(system.Load(SmallDataset(2000)));
  RunCachedReadersVsWriter(&system, 60);
  core::SaeCacheStats stats = system.cache_stats();
  EXPECT_GT(stats.sp_answer.hits + stats.te_vt.hits, 0u);
  EXPECT_GT(stats.sp_answer.invalidations, 0u) << "epoch bumps must flush";
  EXPECT_GT(stats.te_digest.hits, 0u);
}

TEST(CacheConcurrencyTest, TomCachedReadsVerifyDuringWrites) {
  TomSystem::Options options;
  options.record_size = kRecSize;
  options.rsa_modulus_bits = 512;  // fast for tests
  TomSystem system(options);
  SAE_CHECK_OK(system.Load(SmallDataset(1500)));
  RunCachedReadersVsWriter(&system, 30);
  core::TomCacheStats stats = system.cache_stats();
  EXPECT_GT(stats.sp_answer.hits, 0u);
  EXPECT_GT(stats.sp_answer.invalidations, 0u) << "epoch bumps must flush";
  EXPECT_GT(stats.sp_digest.hits + stats.owner_digest.hits, 0u);
}

}  // namespace
}  // namespace sae
