// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit tests for the simulation utilities: cost model, stopwatch, channels.

#include <gtest/gtest.h>

#include <thread>

#include "sim/channel.h"
#include "sim/cost_model.h"
#include "sim/network.h"

namespace sae::sim {
namespace {

TEST(CostModelTest, PaperDefaultChargesTenMsPerAccess) {
  CostModel model;
  EXPECT_DOUBLE_EQ(model.AccessCostMs(0), 0.0);
  EXPECT_DOUBLE_EQ(model.AccessCostMs(1), 10.0);
  EXPECT_DOUBLE_EQ(model.AccessCostMs(123), 1230.0);
}

TEST(CostModelTest, CustomRate) {
  CostModel model{2.5};
  EXPECT_DOUBLE_EQ(model.AccessCostMs(4), 10.0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = watch.ElapsedMs();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 500.0);  // generous upper bound for slow CI
  watch.Restart();
  EXPECT_LT(watch.ElapsedMs(), elapsed);
}

TEST(ChannelTest, AccumulatesBytesAndMessages) {
  Channel ch("DO->SP");
  EXPECT_EQ(ch.name(), "DO->SP");
  EXPECT_EQ(ch.total_bytes(), 0u);
  ch.Send(std::vector<uint8_t>(100));
  ch.Send(std::vector<uint8_t>(23));
  ch.SendBytes(7);
  EXPECT_EQ(ch.total_bytes(), 130u);
  EXPECT_EQ(ch.messages(), 3u);
  ch.Reset();
  EXPECT_EQ(ch.total_bytes(), 0u);
  EXPECT_EQ(ch.messages(), 0u);
}

TEST(ChannelTest, SessionsMeterPrivatelyAndForwardToChannel) {
  Channel ch("SP->Client");
  Channel::Session a = ch.OpenSession();
  Channel::Session b = ch.OpenSession();
  a.Send(std::vector<uint8_t>(40));
  b.SendBytes(2);
  a.SendBytes(10);
  EXPECT_EQ(a.bytes(), 50u);
  EXPECT_EQ(a.messages(), 2u);
  EXPECT_EQ(b.bytes(), 2u);
  EXPECT_EQ(b.messages(), 1u);
  // Sessions are views: the shared channel saw everything.
  EXPECT_EQ(ch.total_bytes(), 52u);
  EXPECT_EQ(ch.messages(), 3u);
}

TEST(NetworkTest, ZeroLatencyLinkIsPureBandwidth) {
  NetworkModel net{0.0, 8.0};  // 1 byte per microsecond
  EXPECT_NEAR(net.TransferMs(1'000'000), 1000.0, 1e-6);
}

TEST(NetworkTest, SaeResponseNeverBelowEitherPath) {
  NetworkModel net{5.0, 8.0};
  for (double sp : {1.0, 50.0, 400.0}) {
    for (double te : {1.0, 50.0, 400.0}) {
      double response = SaeResponseMs(net, sp, te, 1000, 21, 9, 0.0);
      EXPECT_GE(response, net.TransferMs(9) + sp + net.TransferMs(1000) - 1e-9);
      EXPECT_GE(response, net.TransferMs(9) + te + net.TransferMs(21) - 1e-9);
    }
  }
}

}  // namespace
}  // namespace sae::sim
