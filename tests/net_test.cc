// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The serving tier end to end: frame codec (including hostile length
// prefixes and a split/garbage fuzzer), loopback golden parity — the bytes
// a socket carries must be byte-identical to the in-process serializations
// the golden suite pins — and the networked SAE/TOM deployments: wire
// loading, verified queries for every operator, a poisoning SP that the
// networked client rejects, staleness detection, and a small concurrency
// smoke over pooled transports.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/client.h"
#include "core/data_owner.h"
#include "core/messages.h"
#include "core/service_provider.h"
#include "core/tom.h"
#include "core/trusted_entity.h"
#include "dbms/query.h"
#include "mbtree/vo.h"
#include "net/client_transport.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "util/random.h"

namespace sae {
namespace {

using dbms::QueryRequest;
using storage::Record;
using storage::RecordCodec;

constexpr size_t kRecSize = 64;

std::vector<Record> Dataset(size_t n) {
  RecordCodec codec(kRecSize);
  std::vector<Record> out;
  for (uint64_t id = 1; id <= n; ++id) {
    out.push_back(codec.MakeRecord(id, uint32_t(id * 10)));
  }
  return out;
}

// --- frame codec ----------------------------------------------------------------

TEST(FrameCodecTest, RoundTripsMultipleFrames) {
  std::vector<uint8_t> wire;
  std::vector<std::vector<uint8_t>> payloads = {
      {}, {0x01}, {0xAA, 0xBB, 0xCC}, std::vector<uint8_t>(1000, 0x5A)};
  for (const auto& p : payloads) net::AppendFrame(&wire, p.data(), p.size());

  net::FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()));
  std::vector<uint8_t> frame;
  for (const auto& expected : payloads) {
    ASSERT_TRUE(decoder.Next(&frame));
    EXPECT_EQ(frame, expected);
  }
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodecTest, ByteAtATimeDelivery) {
  std::vector<uint8_t> payload(257);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = uint8_t(i);
  std::vector<uint8_t> wire = net::EncodeFrame(payload);

  net::FrameDecoder decoder;
  std::vector<uint8_t> frame;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_TRUE(decoder.Feed(&wire[i], 1));
    EXPECT_FALSE(decoder.Next(&frame)) << "complete before last byte";
  }
  ASSERT_TRUE(decoder.Feed(&wire[wire.size() - 1], 1));
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame, payload);
}

TEST(FrameCodecTest, TruncatedFrameNeverCompletes) {
  std::vector<uint8_t> payload(64, 0x7F);
  std::vector<uint8_t> wire = net::EncodeFrame(payload);
  net::FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size() - 1));
  std::vector<uint8_t> frame;
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_FALSE(decoder.failed());
  EXPECT_EQ(decoder.buffered(), wire.size() - 1);
}

TEST(FrameCodecTest, LyingLengthPrefixFailsWithoutAllocating) {
  // A 4 GiB-minus-one declared length against a 1 KiB cap: the decoder must
  // reject at header-parse time, before reserving payload storage. The
  // buffered() bound is the observable no-allocation proxy.
  net::FrameDecoder decoder(/*max_payload=*/1024);
  std::vector<uint8_t> header = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(decoder.Feed(header.data(), header.size()));
  EXPECT_TRUE(decoder.failed());
  EXPECT_FALSE(decoder.error().empty());
  EXPECT_LE(decoder.buffered(), net::kFrameHeaderBytes);
  // Poisoned decoders stay poisoned: later bytes are refused too.
  uint8_t more = 0x00;
  EXPECT_FALSE(decoder.Feed(&more, 1));
}

TEST(FrameCodecTest, MaxPayloadBoundaryExact) {
  net::FrameDecoder decoder(/*max_payload=*/8);
  std::vector<uint8_t> payload(8, 0x11);
  std::vector<uint8_t> wire = net::EncodeFrame(payload);
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()));
  std::vector<uint8_t> frame;
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame, payload);

  net::FrameDecoder strict(/*max_payload=*/7);
  EXPECT_FALSE(strict.Feed(wire.data(), wire.size()));
  EXPECT_TRUE(strict.failed());
}

// Fuzz the decoder with random frame sequences cut at random boundaries and
// with random garbage: decoding must either produce exactly the encoded
// payloads or fail cleanly, and buffered() must stay bounded by what was
// fed — never by what a hostile header declared.
TEST(FrameCodecTest, FuzzSplitAndGarbageStreams) {
  Rng rng(0x5AE2026);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::vector<uint8_t>> payloads;
    std::vector<uint8_t> wire;
    size_t n_frames = rng.NextBounded(4);
    for (size_t f = 0; f < n_frames; ++f) {
      std::vector<uint8_t> p(rng.NextBounded(300));
      for (auto& b : p) b = uint8_t(rng.NextBounded(256));
      net::AppendFrame(&wire, p.data(), p.size());
      payloads.push_back(std::move(p));
    }
    bool corrupt = round % 3 == 0;
    if (corrupt && !wire.empty()) {
      // Flip bytes of one length header to lie about the size.
      size_t at = 0;  // first frame's header
      for (size_t i = 0; i < net::kFrameHeaderBytes; ++i) {
        wire[at + i] = uint8_t(rng.NextBounded(256));
      }
    }
    net::FrameDecoder decoder(/*max_payload=*/4096);
    size_t fed = 0;
    bool poisoned = false;
    while (fed < wire.size() && !poisoned) {
      size_t chunk = 1 + rng.NextBounded(37);
      chunk = std::min(chunk, wire.size() - fed);
      if (!decoder.Feed(wire.data() + fed, chunk)) poisoned = true;
      fed += chunk;
      ASSERT_LE(decoder.buffered(), fed) << "buffered more than was fed";
    }
    std::vector<uint8_t> frame;
    size_t got = 0;
    while (decoder.Next(&frame)) {
      if (!corrupt) {
        ASSERT_LT(got, payloads.size());
        EXPECT_EQ(frame, payloads[got]);
      }
      ++got;
    }
    if (!corrupt) {
      EXPECT_FALSE(poisoned);
      EXPECT_EQ(got, payloads.size());
    }
  }
}

// --- loopback golden parity -----------------------------------------------------

// Every pinned wire message, shipped through a real socket + frame server
// and back: the received bytes must equal the in-process serialization
// exactly. This is the gate that makes the golden pins cover the network
// path too.
TEST(LoopbackGoldenTest, SocketBytesMatchInProcessSerializations) {
  net::FrameServer echo({}, [](std::vector<uint8_t> request,
                               std::vector<std::vector<uint8_t>>* responses) {
    responses->push_back(std::move(request));
    return false;
  });
  ASSERT_TRUE(echo.Start().ok());

  RecordCodec codec(kRecSize);
  Record r1 = codec.MakeRecord(7, 42);
  Record r2 = codec.MakeRecord(8, 43);
  core::VerificationToken vt;
  vt.epoch = 0x0102030405060708ull;
  for (size_t i = 0; i < crypto::Digest::kSize; ++i) {
    vt.digest.bytes[i] = uint8_t(i);
  }
  dbms::QueryAnswer answer;
  answer.op = dbms::QueryOp::kCount;
  answer.count = 2;
  crypto::RsaSignature sig = {0xDE, 0xAD, 0xBE, 0xEF};

  std::vector<std::vector<uint8_t>> pinned = {
      core::SerializeRecords({r1, r2}, codec),
      core::SerializeQuery(10, 99),
      core::SerializeQueryRequest(QueryRequest::TopK(10, 99, 3)),
      core::SerializeQueryAnswer(answer, {r1, r2}, 5, codec),
      core::SerializeVt(vt),
      core::SerializeResults({r1}, 5, codec),
      core::SerializeEpochNotice(0x0807060504030201ull),
      core::SerializeDelete(7, 42),
      core::SerializeShardEpochs({1, 2, 3}),
      core::SerializeSignature(sig, 9),
  };

  net::ClientTransport transport({.port = echo.port()});
  for (const auto& bytes : pinned) {
    ASSERT_FALSE(bytes.empty());
    auto response = transport.Call(bytes);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value(), bytes)
        << "socket altered pinned message with tag 0x" << std::hex
        << int(bytes[0]);
  }
  EXPECT_EQ(echo.frames_served(), pinned.size());
  echo.Stop();
}

// A connection that ships a lying length prefix is dropped and counted,
// while a well-formed connection keeps working.
TEST(LoopbackGoldenTest, ServerDropsLyingLengthPrefix) {
  net::FrameServer echo({}, [](std::vector<uint8_t> request,
                               std::vector<std::vector<uint8_t>>* responses) {
    responses->push_back(std::move(request));
    return false;
  });
  ASSERT_TRUE(echo.Start().ok());

  auto fd = net::ConnectTcp({.port = echo.port()});
  ASSERT_TRUE(fd.ok());
  net::UniqueFd conn(fd.value());
  std::vector<uint8_t> hostile = {0xFF, 0xFF, 0xFF, 0xFF, 0x00};
  ASSERT_TRUE(net::SendAll(conn.get(), hostile.data(), hostile.size()).ok());
  net::FrameDecoder decoder;
  auto reply = net::RecvFrame(conn.get(), &decoder);
  EXPECT_FALSE(reply.ok());  // server dropped us without answering

  // The server survives and still echoes for honest clients.
  net::ClientTransport transport({.port = echo.port()});
  std::vector<uint8_t> ping = {0x42};
  auto response = transport.Call(ping);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value(), ping);
  EXPECT_GE(echo.protocol_errors(), 1u);
  echo.Stop();
}

// --- networked SAE deployment ---------------------------------------------------

class NetServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sp_ = std::make_unique<core::ServiceProvider>(
        core::ServiceProviderOptions{.record_size = kRecSize});
    te_ = std::make_unique<core::TrustedEntity>(
        core::TrustedEntityOptions{.record_size = kRecSize});
    sp_server_ = std::make_unique<net::SpServer>(sp_.get());
    te_server_ = std::make_unique<net::TeServer>(te_.get());
    ASSERT_TRUE(sp_server_->Start().ok());
    ASSERT_TRUE(te_server_->Start().ok());

    // Wire-load both parties the way a networked DO would: a Records frame
    // then the epoch notice.
    RecordCodec codec(kRecSize);
    dataset_ = Dataset(100);
    net::ClientTransport sp_link({.port = sp_server_->port()});
    net::ClientTransport te_link({.port = te_server_->port()});
    std::vector<uint8_t> records = core::SerializeRecords(dataset_, codec);
    std::vector<uint8_t> notice = core::SerializeEpochNotice(1);
    ASSERT_TRUE(net::CallExpectAck(&sp_link, records).ok());
    ASSERT_TRUE(net::CallExpectAck(&te_link, records).ok());
    ASSERT_TRUE(net::CallExpectAck(&sp_link, notice).ok());
    ASSERT_TRUE(net::CallExpectAck(&te_link, notice).ok());
    published_epoch_ = 1;

    owner_server_ = std::make_unique<net::OwnerServer>(
        [this] { return published_epoch_.load(); });
    ASSERT_TRUE(owner_server_->Start().ok());

    client_ = std::make_unique<net::NetSaeClient>(net::NetSaeClientOptions{
        .sp = {.port = sp_server_->port()},
        .te = {.port = te_server_->port()},
        .owner = {.port = owner_server_->port()},
        .record_size = kRecSize});
  }

  void TearDown() override {
    sp_server_->Stop();
    te_server_->Stop();
    owner_server_->Stop();
  }

  std::unique_ptr<core::ServiceProvider> sp_;
  std::unique_ptr<core::TrustedEntity> te_;
  std::unique_ptr<net::SpServer> sp_server_;
  std::unique_ptr<net::TeServer> te_server_;
  std::unique_ptr<net::OwnerServer> owner_server_;
  std::unique_ptr<net::NetSaeClient> client_;
  std::vector<Record> dataset_;
  std::atomic<uint64_t> published_epoch_{0};
};

TEST_F(NetServingTest, AllOperatorsVerifyAgainstOracle) {
  std::vector<QueryRequest> requests = {
      QueryRequest::Scan(100, 400),  QueryRequest::Point(250),
      QueryRequest::Count(100, 400), QueryRequest::Sum(100, 400),
      QueryRequest::Min(100, 400),   QueryRequest::Max(100, 400),
      QueryRequest::TopK(100, 400, 5)};
  for (const QueryRequest& request : requests) {
    auto verified = client_->Query(request);
    ASSERT_TRUE(verified.ok()) << verified.status().ToString();
    // The witness is the oracle range; spot-check it.
    std::vector<Record> oracle;
    for (const Record& r : dataset_) {
      if (r.key >= request.lo && r.key <= request.hi) oracle.push_back(r);
    }
    EXPECT_EQ(verified.value().witness, oracle);
    EXPECT_EQ(verified.value().claimed_epoch, 1u);
    EXPECT_EQ(verified.value().published_epoch, 1u);
  }
}

// The networked response must be the exact bytes the in-process protocol
// would have produced for the same plan.
TEST_F(NetServingTest, ResponseBytesMatchInProcessSerialization) {
  QueryRequest request = QueryRequest::Scan(100, 400);
  net::ClientTransport sp_link({.port = sp_server_->port()});
  auto wire = sp_link.Call(core::SerializeQueryRequest(request));
  ASSERT_TRUE(wire.ok());

  auto plan = sp_->ExecutePlan(request);
  ASSERT_TRUE(plan.ok());
  std::vector<uint8_t> in_process = core::SerializeQueryAnswer(
      plan.value().answer, plan.value().witness, sp_->epoch(),
      sp_->table().codec());
  EXPECT_EQ(wire.value(), in_process);
}

TEST_F(NetServingTest, PoisonedPlanRejected) {
  auto verified = client_->QueryPoisoned(QueryRequest::Scan(100, 400));
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kVerificationFailure)
      << verified.status().ToString();
}

TEST_F(NetServingTest, StaleSpDetected) {
  // An update reaches the TE and the DO publishes epoch 2, but the SP
  // never applies it: its claimed epoch lags and the client reports
  // staleness, not corruption.
  RecordCodec codec(kRecSize);
  Record extra = codec.MakeRecord(101, 105);
  net::ClientTransport te_link({.port = te_server_->port()});
  ASSERT_TRUE(
      net::CallExpectAck(&te_link, core::SerializeRecords({extra}, codec))
          .ok());
  ASSERT_TRUE(
      net::CallExpectAck(&te_link, core::SerializeEpochNotice(2)).ok());
  published_epoch_ = 2;

  auto verified = client_->Query(QueryRequest::Scan(100, 400));
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kStaleEpoch)
      << verified.status().ToString();

  // Once the SP catches up, the same query verifies again.
  net::ClientTransport sp_link({.port = sp_server_->port()});
  ASSERT_TRUE(
      net::CallExpectAck(&sp_link, core::SerializeRecords({extra}, codec))
          .ok());
  ASSERT_TRUE(
      net::CallExpectAck(&sp_link, core::SerializeEpochNotice(2)).ok());
  auto fresh = client_->Query(QueryRequest::Scan(100, 400));
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh.value().published_epoch, 2u);
}

TEST_F(NetServingTest, WireInsertAndDeleteRoundTrip) {
  RecordCodec codec(kRecSize);
  Record extra = codec.MakeRecord(200, 123);
  net::ClientTransport sp_link({.port = sp_server_->port()});
  net::ClientTransport te_link({.port = te_server_->port()});
  std::vector<uint8_t> records = core::SerializeRecords({extra}, codec);
  std::vector<uint8_t> notice = core::SerializeEpochNotice(2);
  ASSERT_TRUE(net::CallExpectAck(&sp_link, records).ok());
  ASSERT_TRUE(net::CallExpectAck(&te_link, records).ok());
  ASSERT_TRUE(net::CallExpectAck(&sp_link, notice).ok());
  ASSERT_TRUE(net::CallExpectAck(&te_link, notice).ok());
  published_epoch_ = 2;

  auto verified = client_->Query(QueryRequest::Point(123));
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  ASSERT_EQ(verified.value().witness.size(), 1u);
  EXPECT_EQ(verified.value().witness[0], extra);

  std::vector<uint8_t> del = core::SerializeDelete(extra.id, extra.key);
  std::vector<uint8_t> notice3 = core::SerializeEpochNotice(3);
  ASSERT_TRUE(net::CallExpectAck(&sp_link, del).ok());
  ASSERT_TRUE(net::CallExpectAck(&te_link, del).ok());
  ASSERT_TRUE(net::CallExpectAck(&sp_link, notice3).ok());
  ASSERT_TRUE(net::CallExpectAck(&te_link, notice3).ok());
  published_epoch_ = 3;

  auto gone = client_->Query(QueryRequest::Point(123));
  ASSERT_TRUE(gone.ok()) << gone.status().ToString();
  EXPECT_TRUE(gone.value().witness.empty());
}

TEST_F(NetServingTest, ConcurrentClientsAllVerify) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      // Each thread drives its own pooled client (its own connections).
      net::NetSaeClient client(net::NetSaeClientOptions{
          .sp = {.port = sp_server_->port()},
          .te = {.port = te_server_->port()},
          .owner = {.port = owner_server_->port()},
          .record_size = kRecSize});
      for (int q = 0; q < kQueriesPerThread; ++q) {
        uint32_t lo = uint32_t((t * 37 + q * 13) % 900);
        auto verified = client.Query(QueryRequest::Scan(lo, lo + 100));
        if (!verified.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(sp_server_->frame_server().connections_accepted(),
            uint64_t(kThreads));
}

// --- networked TOM deployment ---------------------------------------------------

class TomNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    owner_ = std::make_unique<core::TomDataOwner>(
        core::TomDataOwnerOptions{.record_size = kRecSize});
    sp_ = std::make_unique<core::TomServiceProvider>(
        core::TomServiceProviderOptions{.record_size = kRecSize});
    dataset_ = Dataset(100);
    ASSERT_TRUE(owner_->LoadDataset(dataset_).ok());

    sp_server_ = std::make_unique<net::TomSpServer>(sp_.get());
    ASSERT_TRUE(sp_server_->Start().ok());
    owner_server_ = std::make_unique<net::OwnerServer>(
        [this] { return owner_->epoch(); });
    ASSERT_TRUE(owner_server_->Start().ok());

    // Wire-load: records frame, then the committing signature frame.
    RecordCodec codec(kRecSize);
    net::ClientTransport sp_link({.port = sp_server_->port()});
    ASSERT_TRUE(
        net::CallExpectAck(&sp_link, core::SerializeRecords(dataset_, codec))
            .ok());
    ASSERT_TRUE(net::CallExpectAck(
                    &sp_link, core::SerializeSignature(owner_->signature(),
                                                       owner_->epoch()))
                    .ok());

    client_ = std::make_unique<net::NetTomClient>(net::NetTomClientOptions{
        .sp = {.port = sp_server_->port()},
        .owner = {.port = owner_server_->port()},
        .owner_key = owner_->public_key(),
        .record_size = kRecSize});
  }

  void TearDown() override {
    sp_server_->Stop();
    owner_server_->Stop();
  }

  std::unique_ptr<core::TomDataOwner> owner_;
  std::unique_ptr<core::TomServiceProvider> sp_;
  std::unique_ptr<net::TomSpServer> sp_server_;
  std::unique_ptr<net::OwnerServer> owner_server_;
  std::unique_ptr<net::NetTomClient> client_;
  std::vector<Record> dataset_;
};

TEST_F(TomNetTest, OperatorsVerifyOverTheWire) {
  std::vector<QueryRequest> requests = {
      QueryRequest::Scan(100, 400), QueryRequest::Count(100, 400),
      QueryRequest::Sum(100, 400), QueryRequest::TopK(100, 400, 5)};
  for (const QueryRequest& request : requests) {
    auto verified = client_->Query(request);
    ASSERT_TRUE(verified.ok()) << verified.status().ToString();
    EXPECT_EQ(verified.value().vo_epoch, owner_->epoch());
  }
}

TEST_F(TomNetTest, PoisonedPlanRejected) {
  auto verified = client_->QueryPoisoned(QueryRequest::Scan(100, 400));
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kVerificationFailure)
      << verified.status().ToString();
}

TEST_F(TomNetTest, WireInsertCommitsWithSignature) {
  RecordCodec codec(kRecSize);
  Record extra = codec.MakeRecord(101, 105);
  ASSERT_TRUE(owner_->InsertRecord(extra).ok());

  net::ClientTransport sp_link({.port = sp_server_->port()});
  ASSERT_TRUE(
      net::CallExpectAck(&sp_link, core::SerializeRecords({extra}, codec))
          .ok());
  ASSERT_TRUE(net::CallExpectAck(
                  &sp_link, core::SerializeSignature(owner_->signature(),
                                                     owner_->epoch()))
                  .ok());

  auto verified = client_->Query(QueryRequest::Point(105));
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  ASSERT_EQ(verified.value().witness.size(), 1u);
  EXPECT_EQ(verified.value().witness[0], extra);
}

}  // namespace
}  // namespace sae
