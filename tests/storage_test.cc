// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Unit tests for src/storage: page stores (memory + file), buffer pool
// pin/evict/flush semantics and access accounting, record codec, heap file.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/page_store.h"
#include "storage/record.h"
#include "util/random.h"

namespace sae::storage {
namespace {

// --- page stores (parameterized over both implementations) --------------------

enum class StoreKind { kMemory, kFile };

class PageStoreTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    if (GetParam() == StoreKind::kMemory) {
      store_ = std::make_unique<InMemoryPageStore>();
    } else {
      path_ = ::testing::TempDir() + "/saedb_pagestore_test.bin";
      auto r = FilePageStore::Create(path_);
      ASSERT_TRUE(r.ok());
      store_ = std::move(r).ValueOrDie();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::unique_ptr<PageStore> store_;
  std::string path_;
};

TEST_P(PageStoreTest, AllocateReadWrite) {
  auto id = store_->Allocate();
  ASSERT_TRUE(id.ok());
  Page page;
  page.bytes()[0] = 0xAB;
  page.bytes()[kPageSize - 1] = 0xCD;
  ASSERT_TRUE(store_->Write(id.value(), page).ok());
  Page read;
  ASSERT_TRUE(store_->Read(id.value(), &read).ok());
  EXPECT_EQ(read.bytes()[0], 0xAB);
  EXPECT_EQ(read.bytes()[kPageSize - 1], 0xCD);
}

TEST_P(PageStoreTest, FreshPagesAreZeroed) {
  auto id = store_->Allocate();
  ASSERT_TRUE(id.ok());
  Page read;
  ASSERT_TRUE(store_->Read(id.value(), &read).ok());
  for (size_t i = 0; i < kPageSize; i += 512) EXPECT_EQ(read.bytes()[i], 0);
}

TEST_P(PageStoreTest, FreeAndReuse) {
  auto a = store_->Allocate();
  auto b = store_->Allocate();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(store_->LivePageCount(), 2u);
  ASSERT_TRUE(store_->Free(a.value()).ok());
  EXPECT_EQ(store_->LivePageCount(), 1u);
  auto c = store_->Allocate();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), a.value());  // freed id is recycled
  EXPECT_EQ(store_->LivePageCount(), 2u);
}

TEST_P(PageStoreTest, AccessAfterFreeFails) {
  auto id = store_->Allocate();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->Free(id.value()).ok());
  Page page;
  EXPECT_FALSE(store_->Read(id.value(), &page).ok());
  EXPECT_FALSE(store_->Write(id.value(), page).ok());
  EXPECT_FALSE(store_->Free(id.value()).ok());
}

TEST_P(PageStoreTest, ReadUnallocatedFails) {
  Page page;
  EXPECT_FALSE(store_->Read(1234, &page).ok());
}

TEST_P(PageStoreTest, ManyPagesKeepDistinctContent) {
  constexpr int kPages = 64;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    auto id = store_->Allocate();
    ASSERT_TRUE(id.ok());
    Page page;
    page.bytes()[7] = uint8_t(i);
    ASSERT_TRUE(store_->Write(id.value(), page).ok());
    ids.push_back(id.value());
  }
  for (int i = 0; i < kPages; ++i) {
    Page page;
    ASSERT_TRUE(store_->Read(ids[i], &page).ok());
    EXPECT_EQ(page.bytes()[7], uint8_t(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, PageStoreTest,
                         ::testing::Values(StoreKind::kMemory,
                                           StoreKind::kFile),
                         [](const auto& info) {
                           return info.param == StoreKind::kMemory ? "Memory"
                                                                   : "File";
                         });

// --- buffer pool ---------------------------------------------------------------

TEST(BufferPoolTest, FetchCountsAccessesAndMisses) {
  InMemoryPageStore store;
  BufferPool pool(&store, 8);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  PageId id = page.value().id();
  page.value().Release();

  pool.ResetStats();
  for (int i = 0; i < 5; ++i) {
    auto ref = pool.Fetch(id);
    ASSERT_TRUE(ref.ok());
  }
  EXPECT_EQ(pool.stats().accesses, 5u);
  EXPECT_EQ(pool.stats().misses, 0u);  // stayed cached
}

TEST(BufferPoolTest, WritesSurviveEviction) {
  InMemoryPageStore store;
  BufferPool pool(&store, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 16; ++i) {
    auto ref = pool.New();
    ASSERT_TRUE(ref.ok());
    ref.value().Mutable().bytes()[3] = uint8_t(i);
    ids.push_back(ref.value().id());
  }
  // Only 4 frames: most pages were evicted (written back).
  EXPECT_GT(pool.stats().evictions, 0u);
  for (int i = 0; i < 16; ++i) {
    auto ref = pool.Fetch(ids[i]);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref.value().Get().bytes()[3], uint8_t(i));
  }
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  InMemoryPageStore store;
  BufferPool pool(&store, 4);
  auto pinned = pool.New();
  ASSERT_TRUE(pinned.ok());
  pinned.value().Mutable().bytes()[0] = 0x77;

  // Exhaust remaining frames repeatedly; the pinned frame must survive.
  for (int i = 0; i < 12; ++i) {
    auto ref = pool.New();
    ASSERT_TRUE(ref.ok());
  }
  EXPECT_EQ(pinned.value().Get().bytes()[0], 0x77);
}

TEST(BufferPoolTest, AllPinnedReportsError) {
  InMemoryPageStore store;
  BufferPool pool(&store, 4);
  std::vector<BufferPool::PageRef> refs;
  for (int i = 0; i < 4; ++i) {
    auto ref = pool.New();
    ASSERT_TRUE(ref.ok());
    refs.push_back(std::move(ref).ValueOrDie());
  }
  auto overflow = pool.New();
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOutOfRange);
}

TEST(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  InMemoryPageStore store;
  PageId id;
  {
    BufferPool pool(&store, 4);
    auto ref = pool.New();
    ASSERT_TRUE(ref.ok());
    id = ref.value().id();
    ref.value().Mutable().bytes()[9] = 0x42;
    ref.value().Release();
    ASSERT_TRUE(pool.FlushAll().ok());
    Page direct;
    ASSERT_TRUE(store.Read(id, &direct).ok());
    EXPECT_EQ(direct.bytes()[9], 0x42);
  }
  // Destructor also flushes.
  Page direct;
  ASSERT_TRUE(store.Read(id, &direct).ok());
  EXPECT_EQ(direct.bytes()[9], 0x42);
}

TEST(BufferPoolTest, FreeDropsCachedFrame) {
  InMemoryPageStore store;
  BufferPool pool(&store, 4);
  auto ref = pool.New();
  ASSERT_TRUE(ref.ok());
  PageId id = ref.value().id();
  ref.value().Release();
  ASSERT_TRUE(pool.Free(id).ok());
  EXPECT_FALSE(pool.Fetch(id).ok());
  EXPECT_EQ(store.LivePageCount(), 0u);
}

TEST(BufferPoolTest, FreePinnedPageFails) {
  InMemoryPageStore store;
  BufferPool pool(&store, 4);
  auto ref = pool.New();
  ASSERT_TRUE(ref.ok());
  EXPECT_FALSE(pool.Free(ref.value().id()).ok());
}

// --- record codec -----------------------------------------------------------------

TEST(RecordCodecTest, RoundTrip) {
  RecordCodec codec(500);
  Record r = codec.MakeRecord(123, 456);
  std::vector<uint8_t> bytes = codec.Serialize(r);
  EXPECT_EQ(bytes.size(), 500u);
  Record back = codec.Deserialize(bytes.data());
  EXPECT_EQ(back, r);
}

TEST(RecordCodecTest, MakeRecordIsDeterministic) {
  RecordCodec codec(500);
  EXPECT_EQ(codec.MakeRecord(9, 1), codec.MakeRecord(9, 1));
  EXPECT_NE(codec.MakeRecord(9, 1).payload, codec.MakeRecord(10, 1).payload);
}

TEST(RecordCodecTest, ShortPayloadIsZeroPadded) {
  RecordCodec codec(64);
  Record r{1, 2, {0xAA, 0xBB}};
  std::vector<uint8_t> bytes = codec.Serialize(r);
  EXPECT_EQ(bytes[12], 0xAA);
  EXPECT_EQ(bytes[13], 0xBB);
  for (size_t i = 14; i < 64; ++i) EXPECT_EQ(bytes[i], 0);
}

TEST(RecordCodecTest, MinimalRecordSize) {
  RecordCodec codec(kRecordHeaderSize);
  Record r{42, 7, {}};
  std::vector<uint8_t> bytes = codec.Serialize(r);
  Record back = codec.Deserialize(bytes.data());
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.key, 7u);
  EXPECT_TRUE(back.payload.empty());
}

// --- heap file ---------------------------------------------------------------------

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(&store_, 64), heap_(&pool_, 500) {}

  InMemoryPageStore store_;
  BufferPool pool_;
  HeapFile heap_;
  RecordCodec codec_{500};
};

TEST_F(HeapFileTest, InsertGetRoundTrip) {
  Record r = codec_.MakeRecord(1, 100);
  std::vector<uint8_t> bytes = codec_.Serialize(r);
  auto rid = heap_.Insert(bytes.data());
  ASSERT_TRUE(rid.ok());
  std::vector<uint8_t> out(500);
  ASSERT_TRUE(heap_.Get(rid.value(), out.data()).ok());
  EXPECT_EQ(codec_.Deserialize(out.data()), r);
}

TEST_F(HeapFileTest, SlotsPerPageMatchesRecordSize) {
  // (4096 - 32) / 500 = 8 records per page, the paper's configuration.
  EXPECT_EQ(heap_.slots_per_page(), 8u);
}

TEST_F(HeapFileTest, FillsPagesBeforeAllocating) {
  std::vector<uint8_t> bytes(500);
  for (int i = 0; i < 8; ++i) {
    codec_.Serialize(codec_.MakeRecord(i + 1, i), bytes.data());
    ASSERT_TRUE(heap_.Insert(bytes.data()).ok());
  }
  EXPECT_EQ(heap_.PageCount(), 1u);
  codec_.Serialize(codec_.MakeRecord(9, 9), bytes.data());
  ASSERT_TRUE(heap_.Insert(bytes.data()).ok());
  EXPECT_EQ(heap_.PageCount(), 2u);
}

TEST_F(HeapFileTest, DeleteMakesSlotReusable) {
  std::vector<uint8_t> bytes(500);
  std::vector<Rid> rids;
  for (int i = 0; i < 8; ++i) {
    codec_.Serialize(codec_.MakeRecord(i + 1, i), bytes.data());
    rids.push_back(heap_.Insert(bytes.data()).value());
  }
  ASSERT_TRUE(heap_.Delete(rids[3]).ok());
  EXPECT_EQ(heap_.size(), 7u);
  codec_.Serialize(codec_.MakeRecord(100, 100), bytes.data());
  auto rid = heap_.Insert(bytes.data());
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(rid.value(), rids[3]);  // hole is refilled
  EXPECT_EQ(heap_.PageCount(), 1u);
}

TEST_F(HeapFileTest, GetDeletedFails) {
  std::vector<uint8_t> bytes(500);
  codec_.Serialize(codec_.MakeRecord(1, 1), bytes.data());
  Rid rid = heap_.Insert(bytes.data()).value();
  ASSERT_TRUE(heap_.Delete(rid).ok());
  std::vector<uint8_t> out(500);
  EXPECT_EQ(heap_.Get(rid, out.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ(heap_.Delete(rid).code(), StatusCode::kNotFound);
}

TEST_F(HeapFileTest, UpdateInPlace) {
  std::vector<uint8_t> bytes(500);
  codec_.Serialize(codec_.MakeRecord(1, 1), bytes.data());
  Rid rid = heap_.Insert(bytes.data()).value();
  Record changed = codec_.MakeRecord(1, 999);
  codec_.Serialize(changed, bytes.data());
  ASSERT_TRUE(heap_.Update(rid, bytes.data()).ok());
  std::vector<uint8_t> out(500);
  ASSERT_TRUE(heap_.Get(rid, out.data()).ok());
  EXPECT_EQ(codec_.Deserialize(out.data()), changed);
}

TEST_F(HeapFileTest, ScanVisitsExactlyLiveRecords) {
  std::vector<uint8_t> bytes(500);
  std::map<Rid, Record> expected;
  std::vector<Rid> rids;
  for (int i = 0; i < 30; ++i) {
    Record r = codec_.MakeRecord(i + 1, i * 10);
    codec_.Serialize(r, bytes.data());
    Rid rid = heap_.Insert(bytes.data()).value();
    expected[rid] = r;
    rids.push_back(rid);
  }
  for (int i = 0; i < 30; i += 3) {
    ASSERT_TRUE(heap_.Delete(rids[i]).ok());
    expected.erase(rids[i]);
  }

  std::map<Rid, Record> seen;
  ASSERT_TRUE(heap_
                  .Scan([&](Rid rid, const uint8_t* data) {
                    seen[rid] = codec_.Deserialize(data);
                  })
                  .ok());
  EXPECT_EQ(seen, expected);
}

TEST(HeapFileSmallRecordTest, BitmapLimitsSlots) {
  InMemoryPageStore store;
  BufferPool pool(&store, 16);
  HeapFile heap(&pool, 22);  // smallest supported record
  // Slots are capped by the 24-byte bitmap (192 slots).
  EXPECT_LE(heap.slots_per_page(), 192u);
  EXPECT_GE(heap.slots_per_page(), 128u);
}

TEST(HeapFileStressTest, RandomInsertDeleteAgainstModel) {
  InMemoryPageStore store;
  BufferPool pool(&store, 64);
  RecordCodec codec(100);
  HeapFile heap(&pool, 100);
  Rng rng(31337);

  std::map<Rid, Record> model;
  uint64_t next_id = 1;
  for (int step = 0; step < 3000; ++step) {
    if (model.empty() || rng.NextBool(0.6)) {
      Record r = codec.MakeRecord(next_id++, uint32_t(rng.NextBounded(1000)));
      std::vector<uint8_t> bytes = codec.Serialize(r);
      Rid rid = heap.Insert(bytes.data()).value();
      ASSERT_EQ(model.count(rid), 0u);
      model[rid] = r;
    } else {
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      ASSERT_TRUE(heap.Delete(it->first).ok());
      model.erase(it);
    }
    ASSERT_EQ(heap.size(), model.size());
  }
  // Final consistency check.
  std::vector<uint8_t> out(100);
  for (const auto& [rid, record] : model) {
    ASSERT_TRUE(heap.Get(rid, out.data()).ok());
    EXPECT_EQ(codec.Deserialize(out.data()), record);
  }
}

}  // namespace
}  // namespace sae::storage
