// Copyright (c) saedb authors. Licensed under the MIT license.
//
// The caching layer's differential parity harness plus unit tests for the
// caches themselves. The contract under test: every verified-path cache
// (hot-level tree digests, SP answer cache, TE token memo) is a pure
// memoization — a cached system must be BIT-IDENTICAL to an uncached one
// on every observable: status codes, claimed epochs, answers, witnesses,
// serialized proof bytes. The harness runs 1000+ randomized
// (query, update, attack) schedules against cached/uncached system pairs
// across both models, both hash schemes and all seven plan operators.
//
// kPoisonedCache is deliberately excluded from the random attack pool: a
// poisoned entry persists for later honest queries by design, so cached
// and uncached systems diverge — that behavior is pinned down by targeted
// tests in security_test.cc instead.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/answer_cache.h"
#include "core/messages.h"
#include "core/system.h"
#include "storage/node_cache.h"
#include "util/random.h"

namespace sae::core {
namespace {

constexpr size_t kRecSize = 64;
constexpr Key kDomain = 20000;

// --- AnswerCache unit tests --------------------------------------------------

AnswerCache::Key ScanKey(Key lo, Key hi, uint64_t epoch) {
  AnswerCache::Key key;
  key.lo = lo;
  key.hi = hi;
  key.epoch = epoch;
  return key;
}

CachedAnswer Blob(uint8_t fill) {
  CachedAnswer entry;
  entry.answer_msg.assign(4, fill);
  return entry;
}

TEST(AnswerCacheTest, HitReturnsInsertedBytes) {
  AnswerCache cache({true, 8});
  EXPECT_EQ(cache.Lookup(ScanKey(1, 2, 1)), nullptr);
  cache.Insert(ScanKey(1, 2, 1), Blob(0xAB));
  auto hit = cache.Lookup(ScanKey(1, 2, 1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->answer_msg, std::vector<uint8_t>(4, 0xAB));
  AnswerCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(AnswerCacheTest, EpochIsPartOfTheKey) {
  AnswerCache cache({true, 8});
  cache.Insert(ScanKey(1, 2, 1), Blob(0x01));
  EXPECT_EQ(cache.Lookup(ScanKey(1, 2, 2)), nullptr);
  EXPECT_NE(cache.Lookup(ScanKey(1, 2, 1)), nullptr);
}

TEST(AnswerCacheTest, OperatorAndLimitArePartOfTheKey) {
  AnswerCache cache({true, 8});
  dbms::QueryRequest scan = dbms::QueryRequest::Scan(5, 9);
  dbms::QueryRequest count = dbms::QueryRequest::Count(5, 9);
  dbms::QueryRequest top3 = dbms::QueryRequest::TopK(5, 9, 3);
  dbms::QueryRequest top4 = dbms::QueryRequest::TopK(5, 9, 4);
  cache.Insert(AnswerCache::Key::For(scan, 1), Blob(0x01));
  EXPECT_EQ(cache.Lookup(AnswerCache::Key::For(count, 1)), nullptr);
  EXPECT_EQ(cache.Lookup(AnswerCache::Key::For(top3, 1)), nullptr);
  cache.Insert(AnswerCache::Key::For(top3, 1), Blob(0x03));
  EXPECT_EQ(cache.Lookup(AnswerCache::Key::For(top4, 1)), nullptr);
  EXPECT_NE(cache.Lookup(AnswerCache::Key::For(scan, 1)), nullptr);
}

TEST(AnswerCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  AnswerCache cache({true, 2});
  cache.Insert(ScanKey(1, 1, 1), Blob(1));
  cache.Insert(ScanKey(2, 2, 1), Blob(2));
  // Touch key 1 so key 2 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(ScanKey(1, 1, 1)), nullptr);
  cache.Insert(ScanKey(3, 3, 1), Blob(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(ScanKey(2, 2, 1)), nullptr);
  EXPECT_NE(cache.Lookup(ScanKey(1, 1, 1)), nullptr);
  EXPECT_NE(cache.Lookup(ScanKey(3, 3, 1)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(AnswerCacheTest, InvalidateAllEmptiesAndCounts) {
  AnswerCache cache({true, 8});
  cache.Insert(ScanKey(1, 1, 1), Blob(1));
  cache.Insert(ScanKey(2, 2, 1), Blob(2));
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(ScanKey(1, 1, 1)), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(AnswerCacheTest, DisabledCacheStoresNothing) {
  AnswerCache cache(AnswerCacheOptions::Disabled());
  EXPECT_FALSE(cache.enabled());
  cache.Insert(ScanKey(1, 1, 1), Blob(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(ScanKey(1, 1, 1)), nullptr);
}

// --- HotNodeCache unit tests -------------------------------------------------

struct FakeNode {
  int payload = 0;
};

TEST(HotNodeCacheTest, CachesOnlyHotLevels) {
  storage::HotNodeCache<FakeNode> cache({/*hot_levels=*/2, 16});
  EXPECT_NE(cache.Insert(1, 0, FakeNode{10}), nullptr);  // root: cached
  EXPECT_NE(cache.Insert(2, 1, FakeNode{20}), nullptr);  // level 1: cached
  EXPECT_NE(cache.Insert(3, 2, FakeNode{30}), nullptr);  // leaf: pass-through
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 0)->payload, 10);
  EXPECT_EQ(cache.Lookup(3, 2), nullptr);
}

TEST(HotNodeCacheTest, InvalidateDropsOneClearDropsAll) {
  storage::HotNodeCache<FakeNode> cache({2, 16});
  cache.Insert(1, 0, FakeNode{10});
  cache.Insert(2, 1, FakeNode{20});
  cache.Invalidate(1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
  EXPECT_NE(cache.Lookup(2, 1), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GE(cache.stats().invalidations, 2u);
}

TEST(HotNodeCacheTest, ZeroLevelsDisablesCaching) {
  storage::HotNodeCache<FakeNode> cache({0, 16});
  EXPECT_NE(cache.Insert(1, 0, FakeNode{10}), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
}

TEST(HotNodeCacheTest, EvictsAtCapacity) {
  storage::HotNodeCache<FakeNode> cache({4, 2});
  cache.Insert(1, 0, FakeNode{1});
  cache.Insert(2, 1, FakeNode{2});
  cache.Insert(3, 1, FakeNode{3});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// --- System-level cache effectiveness ----------------------------------------

SaeSystem::Options SmallSaeOptions(crypto::HashScheme scheme) {
  SaeSystem::Options o;
  o.record_size = kRecSize;
  o.scheme = scheme;
  o.sp_index_pool_pages = 256;
  o.sp_heap_pool_pages = 256;
  o.te_pool_pages = 256;
  o.xb_options.max_entries = 16;  // low fanout: real depth at small n
  return o;
}

TomSystem::Options SmallTomOptions(crypto::HashScheme scheme) {
  TomSystem::Options o;
  o.record_size = kRecSize;
  o.scheme = scheme;
  o.rsa_modulus_bits = 512;  // fast for tests
  o.do_pool_pages = 256;
  o.sp_index_pool_pages = 256;
  o.sp_heap_pool_pages = 256;
  o.mb_options.max_leaf_entries = 8;
  o.mb_options.max_internal_keys = 8;
  return o;
}

std::vector<Record> MakeDataset(size_t n, Rng* rng, uint64_t* next_id) {
  storage::RecordCodec codec(kRecSize);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(
        codec.MakeRecord((*next_id)++, Key(rng->NextBounded(kDomain))));
  }
  return records;
}

TEST(CacheEffectivenessTest, SaeRepeatQueryHitsEveryCache) {
  SaeSystem system(SmallSaeOptions(crypto::HashScheme::kSha1));
  Rng rng(7);
  uint64_t next_id = 1;
  ASSERT_TRUE(system.Load(MakeDataset(400, &rng, &next_id)).ok());

  dbms::QueryRequest request = dbms::QueryRequest::Scan(1000, 5000);
  ASSERT_TRUE(system.Query(request).value().verification.ok());
  SaeCacheStats before = system.cache_stats();
  ASSERT_TRUE(system.Query(request).value().verification.ok());
  SaeCacheStats delta = system.cache_stats();
  EXPECT_GT(delta.sp_answer.hits, before.sp_answer.hits);
  EXPECT_GT(delta.te_vt.hits, before.te_vt.hits);

  // An update invalidates the answer caches and the touched hot nodes.
  storage::RecordCodec codec(kRecSize);
  ASSERT_TRUE(system.Insert(codec.MakeRecord(999999, 2500)).ok());
  SaeCacheStats after_update = system.cache_stats();
  EXPECT_GT(after_update.sp_answer.invalidations,
            delta.sp_answer.invalidations);
  EXPECT_GT(after_update.te_vt.invalidations, delta.te_vt.invalidations);
  EXPECT_GT(after_update.te_digest.invalidations,
            delta.te_digest.invalidations);
  // Post-update queries verify and refill.
  auto outcome = system.Query(request).value();
  EXPECT_TRUE(outcome.verification.ok());
}

TEST(CacheEffectivenessTest, TomRepeatQueryHitsAnswerAndDigestCaches) {
  TomSystem system(SmallTomOptions(crypto::HashScheme::kSha1));
  Rng rng(8);
  uint64_t next_id = 1;
  ASSERT_TRUE(system.Load(MakeDataset(400, &rng, &next_id)).ok());

  dbms::QueryRequest request = dbms::QueryRequest::Count(1000, 9000);
  ASSERT_TRUE(system.Query(request).value().verification.ok());
  TomCacheStats before = system.cache_stats();
  ASSERT_TRUE(system.Query(request).value().verification.ok());
  TomCacheStats delta = system.cache_stats();
  EXPECT_GT(delta.sp_answer.hits, before.sp_answer.hits);

  storage::RecordCodec codec(kRecSize);
  ASSERT_TRUE(system.Insert(codec.MakeRecord(999999, 4000)).ok());
  TomCacheStats after = system.cache_stats();
  EXPECT_GT(after.sp_answer.invalidations, delta.sp_answer.invalidations);
  EXPECT_GT(after.sp_digest.invalidations, delta.sp_digest.invalidations);
  EXPECT_TRUE(system.Query(request).value().verification.ok());
}

TEST(CacheEffectivenessTest, DisabledCachesStayEmpty) {
  SaeSystem system(SmallSaeOptions(crypto::HashScheme::kSha1).DisableCaches());
  Rng rng(9);
  uint64_t next_id = 1;
  ASSERT_TRUE(system.Load(MakeDataset(200, &rng, &next_id)).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(system.Query(100, 8000).value().verification.ok());
  }
  SaeCacheStats stats = system.cache_stats();
  EXPECT_EQ(stats.sp_answer.hits, 0u);
  EXPECT_EQ(stats.sp_answer.insertions, 0u);
  EXPECT_EQ(stats.te_vt.hits, 0u);
  EXPECT_EQ(stats.te_digest.hits, 0u);
}

// --- The differential parity harness -----------------------------------------

// Attacks eligible for random schedules: every mode whose observable
// behavior is a pure function of (system state, request, seed) — which is
// all of them except kPoisonedCache (persistent cache damage, see header
// comment) and kNone (drawn separately).
constexpr AttackMode kParityAttacks[] = {
    AttackMode::kDropOne,         AttackMode::kDropAll,
    AttackMode::kInjectFake,      AttackMode::kTamperPayload,
    AttackMode::kTamperKey,       AttackMode::kDuplicateOne,
    AttackMode::kReplayStaleRoot, AttackMode::kStaleVt,
    AttackMode::kStaleCacheReplay, AttackMode::kWrongCount,
    AttackMode::kWrongSum,        AttackMode::kTruncatedTopK,
};

// One randomized operation: either an update or an (operator, range,
// attack) query. Drawing is shared by the SAE and TOM schedules so both
// models face the same distribution.
struct ScheduleOp {
  bool is_insert = false;
  bool is_delete = false;
  Record record;                // for inserts
  RecordId delete_id = 0;       // for deletes
  dbms::QueryRequest request;   // for queries
  AttackMode attack = AttackMode::kNone;
};

class ScheduleGen {
 public:
  ScheduleGen(uint64_t seed, uint64_t* next_id)
      : rng_(seed), codec_(kRecSize), next_id_(next_id) {}

  ScheduleOp Next(std::vector<RecordId>* live_ids) {
    ScheduleOp op;
    uint64_t roll = rng_.NextBounded(100);
    if (roll < 10) {  // insert
      op.is_insert = true;
      op.record =
          codec_.MakeRecord((*next_id_)++, Key(rng_.NextBounded(kDomain)));
      live_ids->push_back(op.record.id);
      return op;
    }
    if (roll < 18 && !live_ids->empty()) {  // delete
      op.is_delete = true;
      size_t pick = rng_.NextBounded(live_ids->size());
      op.delete_id = (*live_ids)[pick];
      live_ids->erase(live_ids->begin() + ptrdiff_t(pick));
      return op;
    }
    // Query: half the time replay a previously issued request so answer
    // caches actually hit; otherwise draw a fresh one.
    if (!issued_.empty() && rng_.NextBounded(2) == 0) {
      op.request = issued_[rng_.NextBounded(issued_.size())];
    } else {
      op.request = FreshRequest();
      issued_.push_back(op.request);
    }
    if (rng_.NextBounded(100) < 15) {
      op.attack = kParityAttacks[rng_.NextBounded(
          sizeof(kParityAttacks) / sizeof(kParityAttacks[0]))];
    }
    return op;
  }

 private:
  dbms::QueryRequest FreshRequest() {
    Key lo = Key(rng_.NextBounded(kDomain));
    Key hi = lo + Key(rng_.NextBounded(kDomain / 4)) + 1;
    switch (rng_.NextBounded(7)) {
      case 0: return dbms::QueryRequest::Scan(lo, hi);
      case 1: return dbms::QueryRequest::Point(lo);
      case 2: return dbms::QueryRequest::Count(lo, hi);
      case 3: return dbms::QueryRequest::Sum(lo, hi);
      case 4: return dbms::QueryRequest::Min(lo, hi);
      case 5: return dbms::QueryRequest::Max(lo, hi);
      default:
        return dbms::QueryRequest::TopK(lo, hi,
                                        uint32_t(rng_.NextBounded(10)) + 1);
    }
  }

  Rng rng_;
  storage::RecordCodec codec_;
  uint64_t* next_id_;
  std::vector<dbms::QueryRequest> issued_;
};

// Runs one schedule against a cached/uncached SAE pair; every outcome must
// be observably identical down to the serialized bytes.
void RunSaeSchedule(crypto::HashScheme scheme, uint64_t seed,
                    AnswerCacheStats* answer_hits_acc,
                    storage::NodeCacheStats* digest_hits_acc) {
  Rng setup(seed);
  uint64_t next_id = 1;
  size_t n = 160 + setup.NextBounded(240);
  std::vector<Record> dataset;
  {
    Rng data_rng(seed ^ 0x9E3779B97F4A7C15ull);
    dataset = MakeDataset(n, &data_rng, &next_id);
  }
  SaeSystem cached(SmallSaeOptions(scheme));
  SaeSystem uncached(SmallSaeOptions(scheme).DisableCaches());
  ASSERT_TRUE(cached.Load(dataset).ok());
  ASSERT_TRUE(uncached.Load(dataset).ok());

  ScheduleGen gen(seed * 2654435761u + 1, &next_id);
  std::vector<RecordId> live_ids;
  for (const Record& r : dataset) live_ids.push_back(r.id);

  const RecordCodec& codec = cached.codec();
  for (int step = 0; step < 16; ++step) {
    ScheduleOp op = gen.Next(&live_ids);
    if (op.is_insert) {
      auto a = cached.InsertVersioned(op.record);
      auto b = uncached.InsertVersioned(op.record);
      ASSERT_EQ(a.status().code(), b.status().code());
      if (a.ok()) {
      ASSERT_EQ(a.value(), b.value());
    }
      continue;
    }
    if (op.is_delete) {
      auto a = cached.DeleteVersioned(op.delete_id);
      auto b = uncached.DeleteVersioned(op.delete_id);
      ASSERT_EQ(a.status().code(), b.status().code());
      if (a.ok()) {
      ASSERT_EQ(a.value(), b.value());
    }
      continue;
    }
    auto a = cached.Query(op.request, op.attack);
    auto b = uncached.Query(op.request, op.attack);
    ASSERT_EQ(a.status().code(), b.status().code());
    if (!a.ok()) continue;
    const auto& ca = a.value();
    const auto& cb = b.value();
    ASSERT_EQ(ca.verification.code(), cb.verification.code())
        << "attack=" << int(op.attack) << " step=" << step << " seed=" << seed;
    ASSERT_EQ(ca.claimed_epoch, cb.claimed_epoch);
    ASSERT_EQ(ca.answer, cb.answer);
    ASSERT_EQ(ca.results, cb.results);
    // Bit-level: the exact wire bytes of answer+witness and of the token.
    ASSERT_EQ(SerializeQueryAnswer(ca.answer, ca.results, ca.claimed_epoch,
                                   codec),
              SerializeQueryAnswer(cb.answer, cb.results, cb.claimed_epoch,
                                   codec));
    ASSERT_EQ(SerializeVt(ca.vt), SerializeVt(cb.vt));
  }
  SaeCacheStats stats = cached.cache_stats();
  *answer_hits_acc += stats.sp_answer;
  *digest_hits_acc += stats.te_digest;
  SaeCacheStats off = uncached.cache_stats();
  ASSERT_EQ(off.sp_answer.insertions, 0u);
  ASSERT_EQ(off.te_digest.hits, 0u);
}

void RunTomSchedule(crypto::HashScheme scheme, uint64_t seed,
                    AnswerCacheStats* answer_hits_acc,
                    storage::NodeCacheStats* digest_hits_acc) {
  Rng setup(seed);
  uint64_t next_id = 1;
  size_t n = 160 + setup.NextBounded(240);
  std::vector<Record> dataset;
  {
    Rng data_rng(seed ^ 0x9E3779B97F4A7C15ull);
    dataset = MakeDataset(n, &data_rng, &next_id);
  }
  TomSystem cached(SmallTomOptions(scheme));
  TomSystem uncached(SmallTomOptions(scheme).DisableCaches());
  ASSERT_TRUE(cached.Load(dataset).ok());
  ASSERT_TRUE(uncached.Load(dataset).ok());

  ScheduleGen gen(seed * 2654435761u + 1, &next_id);
  std::vector<RecordId> live_ids;
  for (const Record& r : dataset) live_ids.push_back(r.id);

  const RecordCodec& codec = cached.codec();
  for (int step = 0; step < 16; ++step) {
    ScheduleOp op = gen.Next(&live_ids);
    if (op.is_insert) {
      auto a = cached.InsertVersioned(op.record);
      auto b = uncached.InsertVersioned(op.record);
      ASSERT_EQ(a.status().code(), b.status().code());
      if (a.ok()) {
      ASSERT_EQ(a.value(), b.value());
    }
      continue;
    }
    if (op.is_delete) {
      auto a = cached.DeleteVersioned(op.delete_id);
      auto b = uncached.DeleteVersioned(op.delete_id);
      ASSERT_EQ(a.status().code(), b.status().code());
      if (a.ok()) {
      ASSERT_EQ(a.value(), b.value());
    }
      continue;
    }
    auto a = cached.Query(op.request, op.attack);
    auto b = uncached.Query(op.request, op.attack);
    ASSERT_EQ(a.status().code(), b.status().code());
    if (!a.ok()) continue;
    const auto& ca = a.value();
    const auto& cb = b.value();
    ASSERT_EQ(ca.verification.code(), cb.verification.code())
        << "attack=" << int(op.attack) << " step=" << step << " seed=" << seed;
    ASSERT_EQ(ca.answer, cb.answer);
    ASSERT_EQ(ca.results, cb.results);
    ASSERT_EQ(SerializeQueryAnswer(ca.answer, ca.results, ca.vo.epoch, codec),
              SerializeQueryAnswer(cb.answer, cb.results, cb.vo.epoch, codec));
    ASSERT_EQ(ca.vo.Serialize(), cb.vo.Serialize());
  }
  TomCacheStats stats = cached.cache_stats();
  *answer_hits_acc += stats.sp_answer;
  *digest_hits_acc += stats.sp_digest;
  TomCacheStats off = uncached.cache_stats();
  ASSERT_EQ(off.sp_answer.insertions, 0u);
  ASSERT_EQ(off.sp_digest.hits, 0u);
}

// 2 schemes x 400 SAE schedules + 2 schemes x 110 TOM schedules = 1020
// randomized differential schedules, each ~16 operations.

class SaeParityTest
    : public ::testing::TestWithParam<crypto::HashScheme> {};

TEST_P(SaeParityTest, FourHundredRandomSchedulesBitIdentical) {
  AnswerCacheStats answer_acc;
  storage::NodeCacheStats digest_acc;
  for (uint64_t s = 0; s < 400; ++s) {
    RunSaeSchedule(GetParam(), s + 1, &answer_acc, &digest_acc);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The schedules must actually exercise the caches, or parity is vacuous.
  EXPECT_GT(answer_acc.hits, 100u);
  EXPECT_GT(digest_acc.hits, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    BothSchemes, SaeParityTest,
    ::testing::Values(crypto::HashScheme::kSha1, crypto::HashScheme::kSha256Trunc),
    [](const ::testing::TestParamInfo<crypto::HashScheme>& info) {
      return info.param == crypto::HashScheme::kSha1 ? "Sha1" : "Sha256Trunc";
    });

class TomParityTest
    : public ::testing::TestWithParam<crypto::HashScheme> {};

TEST_P(TomParityTest, HundredTenRandomSchedulesBitIdentical) {
  AnswerCacheStats answer_acc;
  storage::NodeCacheStats digest_acc;
  for (uint64_t s = 0; s < 110; ++s) {
    RunTomSchedule(GetParam(), s + 1, &answer_acc, &digest_acc);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(answer_acc.hits, 50u);
  EXPECT_GT(digest_acc.hits, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    BothSchemes, TomParityTest,
    ::testing::Values(crypto::HashScheme::kSha1, crypto::HashScheme::kSha256Trunc),
    [](const ::testing::TestParamInfo<crypto::HashScheme>& info) {
      return info.param == crypto::HashScheme::kSha1 ? "Sha1" : "Sha256Trunc";
    });

}  // namespace
}  // namespace sae::core
