// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Cross-cutting property suites: fanout sweeps for all three trees,
// an exhaustive VT check over every (lo, hi) pair of a small domain,
// deserializer robustness under random byte corruption, and a buffer-pool
// stress test against a direct-store reference.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "btree/bplus_tree.h"
#include "core/messages.h"
#include "mbtree/mb_tree.h"
#include "mbtree/vo.h"
#include "storage/page_store.h"
#include "util/random.h"
#include "xbtree/xb_tree.h"

namespace sae {
namespace {

using storage::BufferPool;
using storage::InMemoryPageStore;

crypto::Digest DigestFor(uint64_t id) {
  return crypto::ComputeDigest(&id, sizeof(id));
}

// --- fanout sweeps ---------------------------------------------------------------
// Every structure must behave identically across fanout configurations;
// small fanouts force deep trees and frequent splits/merges.

using Fanout = std::tuple<size_t, size_t>;  // (leaf-ish, internal-ish)

class BTreeFanoutSweep : public ::testing::TestWithParam<Fanout> {};

TEST_P(BTreeFanoutSweep, InsertDeleteQueryBattery) {
  auto [max_leaf, max_internal] = GetParam();
  InMemoryPageStore store;
  BufferPool pool(&store, 512);
  btree::BPlusTreeOptions options;
  options.max_leaf_entries = max_leaf;
  options.max_internal_keys = max_internal;
  auto tree = btree::BPlusTree::Create(&pool, options).ValueOrDie();

  std::multimap<uint32_t, uint64_t> model;
  Rng rng(uint64_t(max_leaf * 131 + max_internal));
  for (uint64_t id = 1; id <= 400; ++id) {
    uint32_t key = uint32_t(rng.NextBounded(300));
    ASSERT_TRUE(tree->Insert(key, id).ok());
    model.emplace(key, id);
  }
  ASSERT_TRUE(tree->Validate().ok());

  // Delete half.
  size_t removed = 0;
  for (auto it = model.begin(); it != model.end() && removed < 200;) {
    ASSERT_TRUE(tree->Delete(it->first, it->second).ok());
    it = model.erase(it);
    ++removed;
    if (removed % 2 == 0 && it != model.end()) ++it;  // vary victims
  }
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_EQ(tree->size(), model.size());

  for (int q = 0; q < 20; ++q) {
    uint32_t lo = uint32_t(rng.NextBounded(300));
    uint32_t hi = lo + uint32_t(rng.NextBounded(60));
    std::vector<btree::BTreeEntry> got;
    ASSERT_TRUE(tree->RangeSearch(lo, hi, &got).ok());
    size_t expect = 0;
    for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi;
         ++it) {
      ++expect;
    }
    ASSERT_EQ(got.size(), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeFanoutSweep,
                         ::testing::Values(Fanout{2, 2}, Fanout{3, 2},
                                           Fanout{2, 5}, Fanout{7, 3},
                                           Fanout{16, 16}, Fanout{64, 8}));

class MbFanoutSweep : public ::testing::TestWithParam<Fanout> {};

TEST_P(MbFanoutSweep, DigestsSurviveChurn) {
  auto [max_leaf, max_internal] = GetParam();
  InMemoryPageStore store;
  BufferPool pool(&store, 512);
  mbtree::MbTreeOptions options;
  options.max_leaf_entries = max_leaf;
  options.max_internal_keys = max_internal;
  auto tree = mbtree::MbTree::Create(&pool, options).ValueOrDie();

  Rng rng(uint64_t(max_leaf * 173 + max_internal));
  std::vector<std::pair<uint32_t, uint64_t>> live;
  for (uint64_t id = 1; id <= 250; ++id) {
    uint32_t key = uint32_t(rng.NextBounded(1000));
    ASSERT_TRUE(
        tree->Insert(mbtree::MbEntry{key, id, DigestFor(id)}).ok());
    live.emplace_back(key, id);
  }
  ASSERT_TRUE(tree->Validate().ok());
  crypto::Digest mid_digest = tree->root_digest();

  for (int i = 0; i < 100; ++i) {
    size_t victim = rng.NextBounded(live.size());
    ASSERT_TRUE(tree->Delete(live[victim].first, live[victim].second).ok());
    live.erase(live.begin() + victim);
  }
  ASSERT_TRUE(tree->Validate().ok());
  EXPECT_NE(tree->root_digest(), mid_digest);
  EXPECT_EQ(tree->size(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, MbFanoutSweep,
                         ::testing::Values(Fanout{2, 2}, Fanout{4, 3},
                                           Fanout{3, 6}, Fanout{12, 12},
                                           Fanout{40, 5}));

class XbFanoutSweep : public ::testing::TestWithParam<Fanout> {};

TEST_P(XbFanoutSweep, VtMatchesModelUnderChurn) {
  auto [max_entries, per_chunk] = GetParam();
  InMemoryPageStore store;
  BufferPool pool(&store, 1024);
  xbtree::XbTreeOptions options;
  options.max_entries = max_entries;
  options.tuples_per_chunk = per_chunk;
  auto tree = xbtree::XbTree::Create(&pool, options).ValueOrDie();

  std::multimap<uint32_t, uint64_t> model;
  Rng rng(uint64_t(max_entries * 271 + per_chunk));
  for (int step = 0; step < 600; ++step) {
    if (model.empty() || rng.NextBool(0.62)) {
      uint32_t key = uint32_t(rng.NextBounded(200));
      uint64_t id = uint64_t(step) + 1;
      ASSERT_TRUE(tree->Insert(key, id, DigestFor(id)).ok());
      model.emplace(key, id);
    } else {
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      ASSERT_TRUE(tree->Delete(it->first, it->second).ok());
      model.erase(it);
    }
    if (step % 60 == 59) {
      uint32_t lo = uint32_t(rng.NextBounded(200));
      uint32_t hi = lo + uint32_t(rng.NextBounded(80));
      crypto::Digest expect;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        expect ^= DigestFor(it->second);
      }
      ASSERT_EQ(tree->GenerateVT(lo, hi).ValueOrDie(), expect)
          << "step " << step;
    }
  }
  ASSERT_TRUE(tree->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, XbFanoutSweep,
                         ::testing::Values(Fanout{2, 1}, Fanout{3, 1},
                                           Fanout{4, 2}, Fanout{9, 3},
                                           Fanout{30, 1}, Fanout{126, 4}));

// --- exhaustive VT ----------------------------------------------------------------
// Every (lo, hi) pair over a small key domain, compared against brute force.
// This nails the off-by-one surface of GenerateVT's boundary conditions.

TEST(XbExhaustiveTest, AllRangesOverSmallDomain) {
  InMemoryPageStore store;
  BufferPool pool(&store, 1024);
  xbtree::XbTreeOptions options;
  options.max_entries = 3;  // deep tree for 60 keys
  auto tree = xbtree::XbTree::Create(&pool, options).ValueOrDie();

  constexpr uint32_t kDomain = 30;
  std::multimap<uint32_t, uint64_t> model;
  Rng rng(99);
  for (uint64_t id = 1; id <= 60; ++id) {
    uint32_t key = uint32_t(rng.NextBounded(kDomain));
    ASSERT_TRUE(tree->Insert(key, id, DigestFor(id)).ok());
    model.emplace(key, id);
  }
  ASSERT_TRUE(tree->Validate().ok());

  for (uint32_t lo = 0; lo <= kDomain; ++lo) {
    for (uint32_t hi = lo; hi <= kDomain; ++hi) {
      crypto::Digest expect;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        expect ^= DigestFor(it->second);
      }
      ASSERT_EQ(tree->GenerateVT(lo, hi).ValueOrDie(), expect)
          << "[" << lo << ", " << hi << "]";
    }
  }
}

TEST(XbExhaustiveTest, DomainEdgeRanges) {
  InMemoryPageStore store;
  BufferPool pool(&store, 1024);
  auto tree = xbtree::XbTree::Create(&pool).ValueOrDie();
  constexpr uint32_t kMax = std::numeric_limits<uint32_t>::max();
  // Keys at the extreme ends of the 32-bit domain.
  ASSERT_TRUE(tree->Insert(0, 1, DigestFor(1)).ok());
  ASSERT_TRUE(tree->Insert(kMax, 2, DigestFor(2)).ok());
  ASSERT_TRUE(tree->Insert(kMax - 1, 3, DigestFor(3)).ok());

  EXPECT_EQ(tree->GenerateVT(0, 0).ValueOrDie(), DigestFor(1));
  EXPECT_EQ(tree->GenerateVT(kMax, kMax).ValueOrDie(), DigestFor(2));
  EXPECT_EQ(tree->GenerateVT(0, kMax).ValueOrDie(),
            DigestFor(1) ^ DigestFor(2) ^ DigestFor(3));
  EXPECT_EQ(tree->GenerateVT(1, kMax - 2).ValueOrDie(), crypto::Digest::Zero());
}

// Exhaustive VO verification: every (lo, hi) pair over a small domain must
// produce a VO that verifies against the honest result — the MB-tree twin
// of the XB-tree exhaustive sweep above, nailing boundary-path edge cases
// (range before all keys, after all keys, between duplicates, full table).
TEST(MbExhaustiveTest, AllRangesVerify) {
  InMemoryPageStore store;
  BufferPool pool(&store, 1024);
  storage::RecordCodec codec(40);
  mbtree::MbTreeOptions options;
  options.max_leaf_entries = 3;
  options.max_internal_keys = 3;
  auto tree = mbtree::MbTree::Create(&pool, options).ValueOrDie();

  constexpr uint32_t kDomain = 25;
  std::map<uint64_t, storage::Record> records;
  Rng rng(123);
  for (uint64_t id = 1; id <= 40; ++id) {
    storage::Record r =
        codec.MakeRecord(id, uint32_t(rng.NextBounded(kDomain)));
    records[id] = r;
    auto bytes = codec.Serialize(r);
    ASSERT_TRUE(tree->Insert(mbtree::MbEntry{
                        r.key, id,
                        crypto::ComputeDigest(bytes.data(), bytes.size())})
                    .ok());
  }
  auto fetch = [&](storage::Rid rid) -> Result<std::vector<uint8_t>> {
    return codec.Serialize(records.at(rid));
  };
  Rng key_rng(7);
  crypto::RsaPrivateKey key = crypto::RsaGenerateKey(&key_rng, 512);
  // Static set-up at epoch 0: sign the epoch-stamped root commitment.
  crypto::RsaSignature sig = crypto::RsaSignDigest(
      key, crypto::EpochStampedDigest(tree->root_digest(), 0));

  for (uint32_t lo = 0; lo <= kDomain; ++lo) {
    for (uint32_t hi = lo; hi <= kDomain; ++hi) {
      std::vector<storage::Record> results;
      for (auto& [id, r] : records) {
        if (r.key >= lo && r.key <= hi) results.push_back(r);
      }
      std::sort(results.begin(), results.end(),
                [](const storage::Record& a, const storage::Record& b) {
                  return a.key != b.key ? a.key < b.key : a.id < b.id;
                });
      auto vo = tree->BuildVo(lo, hi, fetch);
      ASSERT_TRUE(vo.ok()) << "[" << lo << ", " << hi << "]";
      vo.value().signature = sig;
      ASSERT_TRUE(mbtree::VerifyVO(vo.value(), lo, hi, results,
                                   key.PublicKey(), codec)
                      .ok())
          << "[" << lo << ", " << hi << "]";
    }
  }
}

// --- deserializer robustness --------------------------------------------------------
// Randomly corrupted wire bytes must never crash a parser; they must either
// fail cleanly or (for VOs) fail verification.

TEST(FuzzTest, CorruptedVoNeverCrashes) {
  InMemoryPageStore store;
  BufferPool pool(&store, 512);
  storage::RecordCodec codec(64);
  mbtree::MbTreeOptions options;
  options.max_leaf_entries = 5;
  options.max_internal_keys = 4;
  auto tree = mbtree::MbTree::Create(&pool, options).ValueOrDie();
  std::map<uint64_t, storage::Record> records;
  for (uint64_t id = 1; id <= 80; ++id) {
    storage::Record r = codec.MakeRecord(id, uint32_t(id * 5));
    records[id] = r;
    auto bytes = codec.Serialize(r);
    ASSERT_TRUE(tree->Insert(mbtree::MbEntry{
                        r.key, id,
                        crypto::ComputeDigest(bytes.data(), bytes.size())})
                    .ok());
  }
  auto fetch = [&](storage::Rid rid) -> Result<std::vector<uint8_t>> {
    return codec.Serialize(records.at(rid));
  };
  auto vo = tree->BuildVo(100, 300, fetch).ValueOrDie();
  vo.signature.assign(64, 0xAB);  // placeholder; signature checked last
  std::vector<uint8_t> honest = vo.Serialize();

  Rng rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> bytes = honest;
    int flips = 1 + int(rng.NextBounded(5));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] ^= uint8_t(1 + rng.NextBounded(255));
    }
    auto parsed = mbtree::VerificationObject::Deserialize(bytes);
    if (!parsed.ok()) continue;  // clean parse failure
    // If it parses, verification must not crash (and almost surely fails).
    std::vector<storage::Record> results;
    for (auto& [id, r] : records) {
      if (r.key >= 100 && r.key <= 300) results.push_back(r);
    }
    Rng key_rng(1);
    crypto::RsaPrivateKey key = crypto::RsaGenerateKey(&key_rng, 512);
    (void)mbtree::VerifyVO(parsed.value(), 100, 300, results,
                           key.PublicKey(), codec);
  }
}

TEST(FuzzTest, CorruptedMessagesNeverCrash) {
  storage::RecordCodec codec(64);
  std::vector<storage::Record> records;
  for (uint64_t id = 1; id <= 10; ++id) {
    records.push_back(codec.MakeRecord(id, uint32_t(id)));
  }
  core::VerificationToken vt;
  vt.epoch = 3;
  vt.digest = crypto::ComputeDigest("x", 1);
  dbms::QueryRequest topk = dbms::QueryRequest::TopK(5, 500, 3);
  std::vector<std::vector<uint8_t>> messages = {
      core::SerializeRecords(records, codec),
      core::SerializeResults(records, 5, codec),
      core::SerializeQuery(5, 10),
      core::SerializeVt(vt),
      core::SerializeDelete(42, 7),
      core::SerializeSignature(crypto::RsaSignature(64, 0x5A), 9),
      core::SerializeEpochNotice(11),
      core::SerializeShardEpochs({1, 2, 3}),
      core::SerializeQueryRequest(topk),
      core::SerializeQueryAnswer(dbms::EvaluateAnswer(topk, records),
                                 records, 5, codec),
      core::SerializeQueryAnswer(
          dbms::EvaluateAnswer(dbms::QueryRequest::Sum(0, 50), records),
          records, 5, codec),
  };

  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes = messages[rng.NextBounded(messages.size())];
    // Corrupt and/or truncate.
    if (rng.NextBool(0.5) && !bytes.empty()) {
      bytes.resize(rng.NextBounded(bytes.size()));
    }
    for (int f = 0; f < 3; ++f) {
      if (bytes.empty()) break;
      bytes[rng.NextBounded(bytes.size())] ^= uint8_t(rng.Next());
    }
    (void)core::DeserializeRecords(bytes, codec);
    (void)core::DeserializeResults(bytes, codec);
    (void)core::DeserializeQuery(bytes);
    (void)core::DeserializeVt(bytes);
    (void)core::DeserializeDelete(bytes);
    (void)core::DeserializeSignature(bytes);
    (void)core::DeserializeEpochNotice(bytes);
    (void)core::DeserializeShardEpochs(bytes);
    (void)core::DeserializeQueryRequest(bytes);
    (void)core::DeserializeQueryAnswer(bytes, codec);
  }
}

// --- buffer pool stress ---------------------------------------------------------------

TEST(BufferPoolStressTest, RandomWorkloadMatchesDirectStore) {
  InMemoryPageStore pooled_store;
  InMemoryPageStore direct_store;
  BufferPool pool(&pooled_store, 8);  // tiny pool: constant eviction
  Rng rng(2024);

  std::vector<storage::PageId> pooled_ids, direct_ids;
  for (int step = 0; step < 2000; ++step) {
    double dice = rng.NextDouble();
    if (pooled_ids.empty() || dice < 0.3) {
      auto ref = pool.New().ValueOrDie();
      pooled_ids.push_back(ref.id());
      direct_ids.push_back(direct_store.Allocate().ValueOrDie());
    } else if (dice < 0.8) {
      size_t i = rng.NextBounded(pooled_ids.size());
      uint8_t value = uint8_t(rng.Next());
      size_t offset = rng.NextBounded(storage::kPageSize);
      {
        auto ref = pool.Fetch(pooled_ids[i]).ValueOrDie();
        ref.Mutable().bytes()[offset] = value;
      }
      storage::Page page;
      ASSERT_TRUE(direct_store.Read(direct_ids[i], &page).ok());
      page.bytes()[offset] = value;
      ASSERT_TRUE(direct_store.Write(direct_ids[i], page).ok());
    } else {
      size_t i = rng.NextBounded(pooled_ids.size());
      auto ref = pool.Fetch(pooled_ids[i]).ValueOrDie();
      storage::Page expect;
      ASSERT_TRUE(direct_store.Read(direct_ids[i], &expect).ok());
      ASSERT_EQ(std::memcmp(ref.Get().bytes(), expect.bytes(),
                            storage::kPageSize),
                0)
          << "step " << step;
    }
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  for (size_t i = 0; i < pooled_ids.size(); ++i) {
    storage::Page a, b;
    ASSERT_TRUE(pooled_store.Read(pooled_ids[i], &a).ok());
    ASSERT_TRUE(direct_store.Read(direct_ids[i], &b).ok());
    ASSERT_EQ(std::memcmp(a.bytes(), b.bytes(), storage::kPageSize), 0);
  }
}

}  // namespace
}  // namespace sae
