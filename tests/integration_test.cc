// Copyright (c) saedb authors. Licensed under the MIT license.
//
// End-to-end integration tests over the full SAE and TOM systems: realistic
// (downscaled) workloads, every attack mode, dynamic updates, and the
// headline cross-model comparisons the paper claims.

#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/dataset.h"
#include "workload/queries.h"

namespace sae::core {
namespace {

constexpr size_t kRecSize = 120;
constexpr uint32_t kDomain = 100000;

std::vector<Record> TestDataset(size_t n,
                                workload::Distribution dist =
                                    workload::Distribution::kUniform) {
  workload::DatasetSpec spec;
  spec.cardinality = n;
  spec.distribution = dist;
  spec.domain_max = kDomain;
  spec.record_size = kRecSize;
  spec.seed = 2024;
  return workload::GenerateDataset(spec);
}

SaeSystem::Options SaeOptions() {
  SaeSystem::Options o;
  o.record_size = kRecSize;
  return o;
}

TomSystem::Options TomOptions() {
  TomSystem::Options o;
  o.record_size = kRecSize;
  o.rsa_modulus_bits = 512;  // fast for tests
  return o;
}

class SystemsTest : public ::testing::Test {
 protected:
  void LoadBoth(size_t n, workload::Distribution dist =
                              workload::Distribution::kUniform) {
    auto records = TestDataset(n, dist);
    sae_ = std::make_unique<SaeSystem>(SaeOptions());
    tom_ = std::make_unique<TomSystem>(TomOptions());
    ASSERT_TRUE(sae_->Load(records).ok());
    ASSERT_TRUE(tom_->Load(records).ok());
  }

  std::unique_ptr<SaeSystem> sae_;
  std::unique_ptr<TomSystem> tom_;
};

TEST_F(SystemsTest, HonestQueriesVerifyInBothModels) {
  LoadBoth(3000);
  workload::QueryWorkloadSpec qspec;
  qspec.count = 20;
  qspec.extent_fraction = 0.01;
  qspec.domain_max = kDomain;
  for (const auto& q : workload::GenerateQueries(qspec)) {
    auto sae = sae_->Query(q.lo, q.hi);
    ASSERT_TRUE(sae.ok());
    EXPECT_TRUE(sae.value().verification.ok());

    auto tom = tom_->Query(q.lo, q.hi);
    ASSERT_TRUE(tom.ok());
    EXPECT_TRUE(tom.value().verification.ok());

    // Both models must return the same (correct) result set.
    EXPECT_EQ(sae.value().results.size(), tom.value().results.size());
  }
}

TEST_F(SystemsTest, EveryAttackIsDetectedInBothModels) {
  LoadBoth(2000);
  for (AttackMode mode :
       {AttackMode::kDropOne, AttackMode::kDropAll, AttackMode::kInjectFake,
        AttackMode::kTamperPayload, AttackMode::kTamperKey,
        AttackMode::kDuplicateOne}) {
    auto sae = sae_->Query(10000, 30000, mode);
    ASSERT_TRUE(sae.ok());
    EXPECT_EQ(sae.value().verification.code(),
              StatusCode::kVerificationFailure)
        << "SAE missed attack " << int(mode);

    auto tom = tom_->Query(10000, 30000, mode);
    ASSERT_TRUE(tom.ok());
    EXPECT_FALSE(tom.value().verification.ok())
        << "TOM missed attack " << int(mode);
  }
}

TEST_F(SystemsTest, HonestModeIsNotFlaggedAfterAttacks) {
  LoadBoth(1000);
  ASSERT_TRUE(sae_->Query(0, 50000, AttackMode::kDropAll).ok());
  auto honest = sae_->Query(0, 50000, AttackMode::kNone);
  ASSERT_TRUE(honest.ok());
  EXPECT_TRUE(honest.value().verification.ok());
}

TEST_F(SystemsTest, VtIsConstantSizeVoGrows) {
  LoadBoth(5000);
  auto narrow_sae = sae_->Query(10000, 10300).value();
  auto wide_sae = sae_->Query(10000, 40000).value();
  EXPECT_EQ(narrow_sae.costs.auth_bytes, wide_sae.costs.auth_bytes)
      << "VT must not grow with the result";
  // tag + 8-byte epoch stamp + 20-byte digest.
  EXPECT_EQ(wide_sae.costs.auth_bytes, 29u);

  auto narrow_tom = tom_->Query(10000, 10300).value();
  EXPECT_GT(narrow_tom.costs.auth_bytes, 50 * narrow_sae.costs.auth_bytes)
      << "VO should be orders of magnitude larger than VT";
}

TEST_F(SystemsTest, SaeSpCheaperThanTomSp) {
  // Caches off: the comparison is about fanout-driven pool accesses, which
  // the hot-level node cache (deliberately) absorbs for the MB-tree.
  auto records = TestDataset(8000);
  sae_ = std::make_unique<SaeSystem>(SaeOptions().DisableCaches());
  tom_ = std::make_unique<TomSystem>(TomOptions().DisableCaches());
  ASSERT_TRUE(sae_->Load(records).ok());
  ASSERT_TRUE(tom_->Load(records).ok());
  workload::QueryWorkloadSpec qspec;
  qspec.count = 15;
  qspec.extent_fraction = 0.01;
  qspec.domain_max = kDomain;
  uint64_t sae_index = 0, tom_index = 0;
  for (const auto& q : workload::GenerateQueries(qspec)) {
    sae_index += sae_->Query(q.lo, q.hi).value().costs.sp_index_accesses;
    tom_index += tom_->Query(q.lo, q.hi).value().costs.sp_index_accesses;
  }
  // The MB-tree's lower fanout must cost the TOM SP more index accesses.
  EXPECT_LT(sae_index, tom_index);
}

TEST_F(SystemsTest, TeStorageTinyVsSp) {
  // At the paper's 500-byte record size the TE footprint is a small
  // fraction of the SP's (Fig. 8); this suite's 120-byte records still
  // leave a clear gap.
  LoadBoth(5000);
  EXPECT_LT(sae_->te().StorageBytes(), sae_->sp().StorageBytes() * 6 / 10);
}

TEST_F(SystemsTest, SkewedDatasetWorksEndToEnd) {
  LoadBoth(3000, workload::Distribution::kSkewed);
  // Queries in the dense region return large results; sparse region small.
  auto dense = sae_->Query(0, kDomain / 10).value();
  auto sparse = sae_->Query(kDomain - kDomain / 10, kDomain).value();
  EXPECT_TRUE(dense.verification.ok());
  EXPECT_TRUE(sparse.verification.ok());
  EXPECT_GT(dense.results.size(), sparse.results.size());

  auto tom_dense = tom_->Query(0, kDomain / 10).value();
  EXPECT_TRUE(tom_dense.verification.ok());
  EXPECT_EQ(tom_dense.results.size(), dense.results.size());
}

TEST_F(SystemsTest, DynamicUpdatesKeepBothModelsVerifiable) {
  LoadBoth(1500);
  RecordCodec codec(kRecSize);
  // Interleave inserts and deletes, then query and verify.
  for (uint64_t i = 0; i < 30; ++i) {
    Record fresh = codec.MakeRecord(100000 + i, uint32_t(i * 997 % kDomain));
    ASSERT_TRUE(sae_->Insert(fresh).ok());
    ASSERT_TRUE(tom_->Insert(fresh).ok());
  }
  for (uint64_t id = 100; id < 120; ++id) {
    ASSERT_TRUE(sae_->Delete(id).ok());
    ASSERT_TRUE(tom_->Delete(id).ok());
  }
  for (auto [lo, hi] : std::vector<std::pair<uint32_t, uint32_t>>{
           {0, 20000}, {30000, 60000}, {0, kDomain}}) {
    auto sae = sae_->Query(lo, hi);
    ASSERT_TRUE(sae.ok());
    EXPECT_TRUE(sae.value().verification.ok()) << lo << ".." << hi;
    auto tom = tom_->Query(lo, hi);
    ASSERT_TRUE(tom.ok());
    EXPECT_TRUE(tom.value().verification.ok()) << lo << ".." << hi;
    EXPECT_EQ(sae.value().results.size(), tom.value().results.size());
  }
}

TEST_F(SystemsTest, UpdateThenAttackStillDetected) {
  LoadBoth(1000);
  RecordCodec codec(kRecSize);
  ASSERT_TRUE(sae_->Insert(codec.MakeRecord(99999, 500)).ok());
  auto outcome = sae_->Query(0, 2000, AttackMode::kDropOne);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome.value().verification.ok());
}

TEST_F(SystemsTest, EmptyRangeVerifiesInBothModels) {
  LoadBoth(500);
  // Probe for an empty gap: with stride-spread uniform keys over a 100k
  // domain and 500 records, most 10-wide ranges are empty.
  auto sae = sae_->Query(55555, 55560).value();
  EXPECT_TRUE(sae.verification.ok());
  auto tom = tom_->Query(55555, 55560).value();
  EXPECT_TRUE(tom.verification.ok());
  EXPECT_EQ(sae.results.size(), tom.results.size());
}

TEST_F(SystemsTest, ChannelMeteringTracksTraffic) {
  LoadBoth(1000);
  uint64_t before = sae_->te_client_channel().total_bytes();
  ASSERT_TRUE(sae_->Query(0, 1000).ok());
  EXPECT_EQ(sae_->te_client_channel().total_bytes(), before + 29);
  EXPECT_GT(sae_->do_sp_channel().total_bytes(), 1000 * kRecSize);
}

}  // namespace
}  // namespace sae::core
