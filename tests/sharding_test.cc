// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Sharded execution tier suite: ShardRouter fence math and partitioning,
// N=1 equivalence with the unsharded systems (bit-identical results and
// tokens), cross-shard ranges against a serial unsharded oracle,
// shard-boundary edge cases (empty shards, ranges exactly on a fence),
// the sharded malicious-SP matrix (one compromised shard among honest
// ones must be detected and attributed without poisoning the honest
// slices), cross-shard epoch agreement (kStaleEpoch vs kShardEpochSkew),
// composite VO round-trips, and shard-parallel updates (run under
// ThreadSanitizer in CI).

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/messages.h"
#include "core/query_engine.h"
#include "core/shard_router.h"
#include "core/sharded_system.h"
#include "core/system.h"
#include "mbtree/composite_vo.h"
#include "workload/dataset.h"
#include "workload/queries.h"

namespace sae {
namespace {

using core::AttackMode;
using core::BatchQuery;
using core::QueryEngine;
using core::SaeSystem;
using core::ShardAttack;
using core::ShardedSaeSystem;
using core::ShardedSystem;
using core::ShardedTomSystem;
using core::ShardRouter;
using core::TomSystem;
using storage::Key;
using storage::Record;
using storage::RecordCodec;

constexpr size_t kRecSize = 64;

std::vector<Record> MakeDataset(size_t n, uint32_t key_stride = 10) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records;
  records.reserve(n);
  for (uint64_t id = 1; id <= n; ++id) {
    records.push_back(codec.MakeRecord(id, uint32_t(id * key_stride)));
  }
  return records;
}

std::vector<uint8_t> Flatten(const std::vector<Record>& records) {
  RecordCodec codec(kRecSize);
  std::vector<uint8_t> bytes;
  bytes.reserve(records.size() * kRecSize);
  std::vector<uint8_t> scratch(kRecSize);
  for (const Record& record : records) {
    codec.Serialize(record, scratch.data());
    bytes.insert(bytes.end(), scratch.begin(), scratch.end());
  }
  return bytes;
}

template <typename Base>
typename ShardedSystem<Base>::Options ShardedOptions() {
  typename ShardedSystem<Base>::Options options;
  options.base.record_size = kRecSize;
  return options;
}

// --- ShardRouter -------------------------------------------------------------

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  ShardRouter router;
  EXPECT_EQ(router.num_shards(), 1u);
  EXPECT_EQ(router.ShardOf(0), 0u);
  EXPECT_EQ(router.ShardOf(ShardRouter::kMaxKey), 0u);
  auto slices = router.Partition(5, 500);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].shard, 0u);
  EXPECT_EQ(slices[0].lo, 5u);
  EXPECT_EQ(slices[0].hi, 500u);
}

TEST(ShardRouterTest, FenceOwnershipIsHalfOpen) {
  ShardRouter router({100, 200});
  EXPECT_EQ(router.num_shards(), 3u);
  EXPECT_EQ(router.ShardOf(99), 0u);
  EXPECT_EQ(router.ShardOf(100), 1u);  // fence key belongs to the upper shard
  EXPECT_EQ(router.ShardOf(199), 1u);
  EXPECT_EQ(router.ShardOf(200), 2u);
  EXPECT_EQ(router.shard_hi(0) + 1, router.shard_lo(1));
  EXPECT_EQ(router.shard_hi(1) + 1, router.shard_lo(2));
  EXPECT_EQ(router.shard_hi(2), ShardRouter::kMaxKey);
}

TEST(ShardRouterTest, PartitionClipsAtFences) {
  ShardRouter router({100, 200});
  auto slices = router.Partition(50, 250);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].lo, 50u);
  EXPECT_EQ(slices[0].hi, 99u);
  EXPECT_EQ(slices[1].lo, 100u);
  EXPECT_EQ(slices[1].hi, 199u);
  EXPECT_EQ(slices[2].lo, 200u);
  EXPECT_EQ(slices[2].hi, 250u);

  // Range exactly on a fence key: [fence, fence] is a one-shard query.
  auto on_fence = router.Partition(100, 100);
  ASSERT_EQ(on_fence.size(), 1u);
  EXPECT_EQ(on_fence[0].shard, 1u);

  // [fence-1, fence] spans the boundary by exactly one key on each side.
  auto straddle = router.Partition(99, 100);
  ASSERT_EQ(straddle.size(), 2u);
  EXPECT_EQ(straddle[0].shard, 0u);
  EXPECT_EQ(straddle[0].hi, 99u);
  EXPECT_EQ(straddle[1].lo, 100u);
}

TEST(ShardRouterTest, VerifyCoverRejectsGapsOverlapsAndForeignFences) {
  ShardRouter router({100, 200});
  auto good = router.Partition(50, 250);
  EXPECT_TRUE(router.VerifyCover(50, 250, good).ok());

  auto missing = good;
  missing.erase(missing.begin() + 1);  // hide the middle shard
  EXPECT_FALSE(router.VerifyCover(50, 250, missing).ok());

  auto moved = good;
  moved[0].hi = 120;  // shard 0 claims keys beyond its fence
  moved[1].lo = 121;
  EXPECT_FALSE(router.VerifyCover(50, 250, moved).ok());

  auto short_cover = good;
  short_cover[2].hi = 240;  // stops before the query's upper bound
  EXPECT_FALSE(router.VerifyCover(50, 250, short_cover).ok());
}

TEST(ShardRouterTest, EqualWidthAndBalancedProduceValidFences) {
  ShardRouter width = ShardRouter::EqualWidth(4, 1000);
  EXPECT_EQ(width.num_shards(), 4u);
  ASSERT_EQ(width.fences().size(), 3u);
  EXPECT_EQ(width.fences()[0], 250u);

  auto dataset = MakeDataset(1000);
  ShardRouter balanced = ShardRouter::Balanced(dataset, 4);
  EXPECT_EQ(balanced.num_shards(), 4u);
  std::vector<size_t> counts(balanced.num_shards(), 0);
  for (const Record& r : dataset) ++counts[balanced.ShardOf(r.key)];
  for (size_t count : counts) {
    EXPECT_GT(count, dataset.size() / 8);  // roughly balanced
  }
}

TEST(ShardRouterTest, BalancedDegradesOnDuplicateHeavyKeys) {
  RecordCodec codec(kRecSize);
  std::vector<Record> records;
  for (uint64_t id = 1; id <= 100; ++id) {
    records.push_back(codec.MakeRecord(id, 7));  // one single key
  }
  ShardRouter router = ShardRouter::Balanced(records, 4);
  EXPECT_EQ(router.num_shards(), 1u);  // no valid fence exists
}

TEST(ShardRouterTest, CrossShardQueriesStraddleFences) {
  ShardRouter router = ShardRouter::EqualWidth(4, 10'000);
  workload::QueryWorkloadSpec spec;
  spec.count = 40;
  spec.domain_max = 10'000;
  auto queries = workload::GenerateCrossShardQueries(spec, router.fences());
  ASSERT_EQ(queries.size(), spec.count);
  for (const auto& q : queries) {
    EXPECT_GE(router.Partition(q.lo, q.hi).size(), 2u)
        << "[" << q.lo << ", " << q.hi << "]";
  }
}

// --- N = 1 degenerate config: bit-identical to the unsharded path ------------

TEST(ShardedSaeTest, SingleShardIsBitIdenticalToUnsharded) {
  auto dataset = MakeDataset(600);

  SaeSystem::Options options;
  options.record_size = kRecSize;
  SaeSystem unsharded(options);
  ASSERT_TRUE(unsharded.Load(dataset).ok());

  ShardedSaeSystem sharded(ShardRouter(), ShardedOptions<SaeSystem>());
  ASSERT_EQ(sharded.num_shards(), 1u);
  ASSERT_TRUE(sharded.Load(dataset).ok());

  for (auto [lo, hi] : {std::pair<Key, Key>{0, 6000},
                        {150, 1500},
                        {777, 777},
                        {5990, 9000}}) {
    auto plain = unsharded.Query(lo, hi);
    auto shard = sharded.Query(lo, hi);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(shard.ok());
    EXPECT_TRUE(shard.value().verification.ok());
    EXPECT_EQ(Flatten(plain.value().results),
              Flatten(shard.value().results));
    ASSERT_EQ(shard.value().slices.size(), 1u);
    EXPECT_EQ(shard.value().slices[0].outcome.vt, plain.value().vt);
    EXPECT_EQ(shard.value().costs.te_accesses,
              plain.value().costs.te_accesses);
  }
}

TEST(ShardedTomTest, SingleShardIsBitIdenticalToUnsharded) {
  auto dataset = MakeDataset(400);

  TomSystem::Options options;
  options.record_size = kRecSize;
  TomSystem unsharded(options);
  ASSERT_TRUE(unsharded.Load(dataset).ok());

  ShardedTomSystem sharded(ShardRouter(), ShardedOptions<TomSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  auto plain = unsharded.Query(100, 2500);
  auto shard = sharded.Query(100, 2500);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(shard.ok());
  EXPECT_TRUE(shard.value().verification.ok());
  EXPECT_EQ(Flatten(plain.value().results), Flatten(shard.value().results));
  ASSERT_EQ(shard.value().slices.size(), 1u);
  EXPECT_EQ(shard.value().slices[0].outcome.vo.Serialize(),
            plain.value().vo.Serialize());
}

// --- cross-shard ranges vs the unsharded oracle ------------------------------

TEST(ShardedSaeTest, CrossShardRangeMatchesUnshardedOracle) {
  auto dataset = MakeDataset(900);  // keys 10..9000

  SaeSystem::Options options;
  options.record_size = kRecSize;
  SaeSystem oracle(options);
  ASSERT_TRUE(oracle.Load(dataset).ok());

  ShardedSaeSystem sharded(ShardRouter({3000, 6000}),
                           ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  // Spans all three shards.
  auto plain = oracle.Query(2500, 6500);
  auto shard = sharded.Query(2500, 6500);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(shard.ok());
  ASSERT_EQ(shard.value().slices.size(), 3u);
  EXPECT_TRUE(shard.value().verification.ok());
  EXPECT_EQ(Flatten(plain.value().results), Flatten(shard.value().results));
}

TEST(ShardedSaeTest, RandomizedCrossShardRangesMatchOracle) {
  auto dataset = MakeDataset(800);
  SaeSystem::Options options;
  options.record_size = kRecSize;
  SaeSystem oracle(options);
  ASSERT_TRUE(oracle.Load(dataset).ok());

  ShardRouter router = ShardRouter::Balanced(dataset, 4);
  ASSERT_EQ(router.num_shards(), 4u);
  ShardedSaeSystem sharded(router, ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  workload::QueryWorkloadSpec spec;
  spec.count = 60;
  spec.domain_max = 8000;
  spec.extent_fraction = 0.25;
  auto queries = workload::GenerateCrossShardQueries(spec, router.fences());
  size_t multi_shard = 0;
  for (const auto& q : queries) {
    auto plain = oracle.Query(q.lo, q.hi);
    auto shard = sharded.Query(q.lo, q.hi);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(shard.ok());
    EXPECT_TRUE(shard.value().verification.ok()) << q.lo << ".." << q.hi;
    EXPECT_EQ(Flatten(plain.value().results),
              Flatten(shard.value().results));
    multi_shard += shard.value().slices.size() >= 2 ? 1 : 0;
  }
  EXPECT_EQ(multi_shard, queries.size());  // every query crossed a fence
}

TEST(ShardedTomTest, RandomizedCrossShardRangesMatchOracle) {
  auto dataset = MakeDataset(500);
  TomSystem::Options options;
  options.record_size = kRecSize;
  TomSystem oracle(options);
  ASSERT_TRUE(oracle.Load(dataset).ok());

  ShardRouter router({1500, 3300});
  ShardedTomSystem sharded(router, ShardedOptions<TomSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  workload::QueryWorkloadSpec spec;
  spec.count = 25;
  spec.domain_max = 5000;
  spec.extent_fraction = 0.2;
  auto queries = workload::GenerateCrossShardQueries(spec, router.fences());
  for (const auto& q : queries) {
    auto plain = oracle.Query(q.lo, q.hi);
    auto shard = sharded.Query(q.lo, q.hi);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(shard.ok());
    EXPECT_TRUE(shard.value().verification.ok());
    EXPECT_EQ(Flatten(plain.value().results),
              Flatten(shard.value().results));
  }
}

// --- shard-boundary edge cases -----------------------------------------------

TEST(ShardedSaeTest, EmptyShardsAnswerAndVerify) {
  // All keys land in shard 1 of three; shards 0 and 2 stay empty.
  auto dataset = MakeDataset(200, 1);  // keys 1..200
  ShardedSaeSystem sharded(ShardRouter({1, 1000}),
                           ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());
  EXPECT_EQ(sharded.ShardEpochs(), (std::vector<uint64_t>{1, 1, 1}));

  // Query spanning all three shards: the empty shards contribute empty,
  // verified slices.
  auto outcome = sharded.Query(0, 2000);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().verification.ok());
  ASSERT_EQ(outcome.value().slices.size(), 3u);
  EXPECT_TRUE(outcome.value().slices[0].outcome.results.empty());
  EXPECT_EQ(outcome.value().slices[1].outcome.results.size(), 200u);
  EXPECT_TRUE(outcome.value().slices[2].outcome.results.empty());

  // A query entirely inside an empty shard verifies an empty result.
  auto empty = sharded.Query(1500, 1800);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().verification.ok());
  EXPECT_TRUE(empty.value().results.empty());
}

TEST(ShardedTomTest, EmptyShardsAnswerAndVerify) {
  auto dataset = MakeDataset(150, 1);  // keys 1..150
  ShardedTomSystem sharded(ShardRouter({500}), ShardedOptions<TomSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  auto outcome = sharded.Query(100, 900);  // spans into the empty shard
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().verification.ok());
  EXPECT_EQ(outcome.value().results.size(), 51u);  // keys 100..150
}

TEST(ShardedSaeTest, RangeExactlyOnFenceKeys) {
  auto dataset = MakeDataset(600);  // keys 10..6000
  ShardRouter router({3000});
  ShardedSaeSystem sharded(router, ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  SaeSystem::Options options;
  options.record_size = kRecSize;
  SaeSystem oracle(options);
  ASSERT_TRUE(oracle.Load(dataset).ok());

  // [fence, fence]: single-shard point query on the boundary key.
  auto on = sharded.Query(3000, 3000);
  ASSERT_TRUE(on.ok());
  ASSERT_EQ(on.value().slices.size(), 1u);
  EXPECT_EQ(on.value().slices[0].shard, 1u);
  EXPECT_TRUE(on.value().verification.ok());
  EXPECT_EQ(on.value().results.size(), 1u);

  // [lo, fence-1] stays entirely in the lower shard.
  auto below = sharded.Query(2500, 2999);
  ASSERT_TRUE(below.ok());
  ASSERT_EQ(below.value().slices.size(), 1u);
  EXPECT_EQ(below.value().slices[0].shard, 0u);
  EXPECT_TRUE(below.value().verification.ok());

  // [fence-1, fence] splits into two one-key slices on the boundary.
  auto straddle = sharded.Query(2999, 3000);
  ASSERT_TRUE(straddle.ok());
  ASSERT_EQ(straddle.value().slices.size(), 2u);
  EXPECT_TRUE(straddle.value().verification.ok());
  auto plain = oracle.Query(2999, 3000);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(Flatten(plain.value().results),
            Flatten(straddle.value().results));
}

// --- the sharded malicious-SP matrix -----------------------------------------

class ShardedMaliciousTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeDataset(600);  // keys 10..6000
    router_ = ShardRouter({2000, 4000});
    sae_ = std::make_unique<ShardedSaeSystem>(router_,
                                              ShardedOptions<SaeSystem>());
    ASSERT_TRUE(sae_->Load(dataset_).ok());
    tom_ = std::make_unique<ShardedTomSystem>(router_,
                                              ShardedOptions<TomSystem>());
    ASSERT_TRUE(tom_->Load(dataset_).ok());
  }

  std::vector<Record> dataset_;
  ShardRouter router_{std::vector<Key>{}};
  std::unique_ptr<ShardedSaeSystem> sae_;
  std::unique_ptr<ShardedTomSystem> tom_;
};

TEST_F(ShardedMaliciousTest, OneCompromisedShardIsAttributedSae) {
  const AttackMode kMutations[] = {
      AttackMode::kDropOne,     AttackMode::kDropAll,
      AttackMode::kInjectFake,  AttackMode::kTamperPayload,
      AttackMode::kTamperKey,   AttackMode::kDuplicateOne,
  };
  for (AttackMode mode : kMutations) {
    for (size_t bad_shard = 0; bad_shard < 3; ++bad_shard) {
      auto outcome =
          sae_->Query(1500, 4500, ShardAttack::At(bad_shard, mode));
      ASSERT_TRUE(outcome.ok());
      const auto& v = outcome.value();
      EXPECT_EQ(v.verification.code(), StatusCode::kVerificationFailure)
          << "mode " << int(mode) << " shard " << bad_shard;
      // Attribution: the message names the shard, and exactly the honest
      // slices verified — the compromised shard never poisons them.
      EXPECT_NE(v.verification.message().find(std::to_string(bad_shard)),
                std::string::npos);
      for (const auto& slice : v.slices) {
        if (slice.shard == bad_shard) {
          EXPECT_FALSE(slice.outcome.verification.ok());
        } else {
          EXPECT_TRUE(slice.outcome.verification.ok());
        }
      }
    }
  }
}

TEST_F(ShardedMaliciousTest, OneCompromisedShardIsAttributedTom) {
  for (AttackMode mode :
       {AttackMode::kDropOne, AttackMode::kTamperPayload}) {
    for (size_t bad_shard = 0; bad_shard < 3; ++bad_shard) {
      auto outcome =
          tom_->Query(1500, 4500, ShardAttack::At(bad_shard, mode));
      ASSERT_TRUE(outcome.ok());
      const auto& v = outcome.value();
      EXPECT_EQ(v.verification.code(), StatusCode::kVerificationFailure);
      for (const auto& slice : v.slices) {
        EXPECT_EQ(slice.outcome.verification.ok(), slice.shard != bad_shard);
      }
    }
  }
}

// The aggregate adversarial matrix, sharded: one shard lies about its
// partial COUNT/SUM or truncates its top-k winners while every witness
// byte it ships is genuine. The per-slice answer recomputation catches it,
// the composite fold attributes it, and the honest slices stay verified.
TEST_F(ShardedMaliciousTest, AggregateTamperingShardIsAttributed) {
  struct Case {
    dbms::QueryRequest request;
    AttackMode mode;
  };
  const Case kCases[] = {
      {dbms::QueryRequest::Count(1500, 4500), AttackMode::kWrongCount},
      {dbms::QueryRequest::Sum(1500, 4500), AttackMode::kWrongSum},
      {dbms::QueryRequest::TopK(1500, 4500, 7), AttackMode::kTruncatedTopK},
  };
  for (const Case& c : kCases) {
    for (size_t bad_shard = 0; bad_shard < 3; ++bad_shard) {
      auto sae = sae_->Query(c.request, ShardAttack::At(bad_shard, c.mode));
      ASSERT_TRUE(sae.ok());
      EXPECT_EQ(sae.value().verification.code(),
                StatusCode::kVerificationFailure)
          << "SAE mode " << int(c.mode) << " shard " << bad_shard;
      EXPECT_NE(sae.value().verification.message().find(
                    std::to_string(bad_shard)),
                std::string::npos);
      for (const auto& slice : sae.value().slices) {
        EXPECT_EQ(slice.outcome.verification.ok(), slice.shard != bad_shard);
      }

      auto tom = tom_->Query(c.request, ShardAttack::At(bad_shard, c.mode));
      ASSERT_TRUE(tom.ok());
      EXPECT_EQ(tom.value().verification.code(),
                StatusCode::kVerificationFailure)
          << "TOM mode " << int(c.mode) << " shard " << bad_shard;
      EXPECT_NE(tom.value().verification.message().find(
                    std::to_string(bad_shard)),
                std::string::npos);
      for (const auto& slice : tom.value().slices) {
        EXPECT_EQ(slice.outcome.verification.ok(), slice.shard != bad_shard);
      }
    }
  }
}

// With every shard honest the same cross-shard aggregates verify and the
// composite answer folds to the oracle's — the matrix's control row.
TEST_F(ShardedMaliciousTest, HonestCrossShardAggregatesVerify) {
  SaeSystem oracle{[] {
    SaeSystem::Options o;
    o.record_size = kRecSize;
    return o;
  }()};
  ASSERT_TRUE(oracle.Load(dataset_).ok());
  for (const auto& request :
       {dbms::QueryRequest::Count(1500, 4500),
        dbms::QueryRequest::Sum(1500, 4500), dbms::QueryRequest::Min(1500, 4500),
        dbms::QueryRequest::Max(1500, 4500),
        dbms::QueryRequest::TopK(1500, 4500, 7)}) {
    auto composite = sae_->Query(request);
    auto plain = oracle.Query(request);
    ASSERT_TRUE(composite.ok());
    ASSERT_TRUE(plain.ok());
    EXPECT_TRUE(composite.value().verification.ok());
    EXPECT_EQ(composite.value().answer, plain.value().answer)
        << dbms::QueryOpName(request.op);
  }
}

TEST_F(ShardedMaliciousTest, AttackOutsideQueriedShardsIsHarmless) {
  // The compromised shard owns keys >= 4000; the query never touches it.
  auto outcome = sae_->Query(100, 1900,
                             ShardAttack::At(2, AttackMode::kTamperPayload));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().verification.ok());
}

TEST_F(ShardedMaliciousTest, StaleShardAmongFreshOnesIsSkewSae) {
  // One shard replays a stale token inside a three-shard answer: its slice
  // is stale while its neighbours are fresh — a torn snapshot, reported as
  // kShardEpochSkew (not plain staleness) and attributed to the laggard.
  auto outcome =
      sae_->Query(1500, 4500, ShardAttack::At(1, AttackMode::kStaleVt));
  ASSERT_TRUE(outcome.ok());
  const auto& v = outcome.value();
  EXPECT_EQ(v.verification.code(), StatusCode::kShardEpochSkew);
  EXPECT_NE(v.verification.message().find("1"), std::string::npos);
  for (const auto& slice : v.slices) {
    if (slice.shard == 1) {
      EXPECT_EQ(slice.outcome.verification.code(), StatusCode::kStaleEpoch);
    } else {
      EXPECT_TRUE(slice.outcome.verification.ok());
    }
  }
}

TEST_F(ShardedMaliciousTest, AllShardsStaleIsReplayNotSkewSae) {
  auto outcome = sae_->Query(1500, 4500, AttackMode::kStaleVt);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().verification.code(), StatusCode::kStaleEpoch);
}

TEST_F(ShardedMaliciousTest, StaleShardAmongFreshOnesIsSkewTom) {
  auto outcome =
      tom_->Query(1500, 4500, ShardAttack::At(2, AttackMode::kStaleVt));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().verification.code(),
            StatusCode::kShardEpochSkew);

  auto all = tom_->Query(1500, 4500, AttackMode::kStaleVt);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().verification.code(), StatusCode::kStaleEpoch);
}

// --- per-shard epochs and update routing -------------------------------------

TEST(ShardedSaeTest, UpdatesBumpOnlyTheOwningShardEpoch) {
  auto dataset = MakeDataset(300);  // keys 10..3000
  ShardedSaeSystem sharded(ShardRouter({1000, 2000}),
                           ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());
  EXPECT_EQ(sharded.ShardEpochs(), (std::vector<uint64_t>{1, 1, 1}));

  RecordCodec codec(kRecSize);
  auto update = sharded.InsertVersioned(codec.MakeRecord(9001, 1500));
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update.value().shard, 1u);
  EXPECT_EQ(update.value().epoch, 2u);
  EXPECT_EQ(sharded.ShardEpochs(), (std::vector<uint64_t>{1, 2, 1}));

  // Cross-shard reads remain fresh: each slice speaks for its own shard's
  // epoch, and the published vector is the client's reference.
  auto outcome = sharded.Query(500, 2500);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().verification.ok());

  auto del = sharded.DeleteVersioned(9001);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().shard, 1u);
  EXPECT_EQ(del.value().epoch, 3u);

  // Directory-level routing: deleting an unknown id fails cleanly.
  EXPECT_EQ(sharded.DeleteVersioned(777777).status().code(),
            StatusCode::kNotFound);
  // Cross-shard duplicate ids are rejected before touching any shard.
  EXPECT_EQ(sharded.Insert(codec.MakeRecord(5, 2500)).code(),
            StatusCode::kAlreadyExists);
}

TEST(ShardedSaeTest, ShardEpochVectorMessageRoundTrips) {
  auto dataset = MakeDataset(100);
  ShardedSaeSystem sharded(ShardRouter({500}), ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());
  RecordCodec codec(kRecSize);
  ASSERT_TRUE(sharded.Insert(codec.MakeRecord(5000, 700)).ok());

  std::vector<uint8_t> msg =
      core::SerializeShardEpochs(sharded.ShardEpochs());
  auto decoded = core::DeserializeShardEpochs(msg);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), (std::vector<uint64_t>{1, 2}));

  std::vector<uint8_t> truncated(msg.begin(), msg.end() - 3);
  EXPECT_FALSE(core::DeserializeShardEpochs(truncated).ok());
}

TEST(ShardedSaeTest, ThinClientCompositeVerification) {
  // The SAE analog of mbtree::VerifyComposite: a thin client re-verifies a
  // stitched answer from the DO-published fences + epoch vector alone.
  auto dataset = MakeDataset(500);  // keys 10..5000
  ShardRouter router({2000, 3500});
  ShardedSaeSystem sharded(router, ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  auto outcome = sharded.Query(1000, 4000);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().slices.size(), 3u);

  std::vector<core::Client::ShardSlice> slices;
  for (const auto& slice : outcome.value().slices) {
    core::Client::ShardSlice thin;
    thin.shard = slice.shard;
    thin.lo = slice.lo;
    thin.hi = slice.hi;
    thin.results = slice.outcome.results;
    thin.vt = slice.outcome.vt;
    thin.claimed_epoch = slice.outcome.claimed_epoch;
    slices.push_back(std::move(thin));
  }
  RecordCodec codec(kRecSize);
  std::vector<std::pair<size_t, Status>> verdicts;
  Status st = core::Client::VerifyShardedResult(
      1000, 4000, slices, router.fences(), sharded.ShardEpochs(), codec,
      crypto::HashScheme::kSha1, &verdicts);
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(verdicts.size(), 3u);

  // Tamper one record inside shard 1's slice: attributed failure.
  auto tampered = slices;
  ASSERT_FALSE(tampered[1].results.empty());
  tampered[1].results[0].payload[0] ^= 0x5A;
  st = core::Client::VerifyShardedResult(1000, 4000, tampered,
                                         router.fences(),
                                         sharded.ShardEpochs(), codec,
                                         crypto::HashScheme::kSha1,
                                         &verdicts);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
  EXPECT_TRUE(verdicts[0].second.ok());
  EXPECT_FALSE(verdicts[1].second.ok());
  EXPECT_TRUE(verdicts[2].second.ok());

  // A published vector fresher than one slice's epoch: skew; fresher than
  // all: uniform staleness.
  std::vector<uint64_t> published = sharded.ShardEpochs();
  published[2] += 1;
  st = core::Client::VerifyShardedResult(1000, 4000, slices,
                                         router.fences(), published, codec,
                                         crypto::HashScheme::kSha1, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kShardEpochSkew);
  for (uint64_t& epoch : published) epoch += 1;
  st = core::Client::VerifyShardedResult(1000, 4000, slices,
                                         router.fences(), published, codec,
                                         crypto::HashScheme::kSha1, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kStaleEpoch);

  // A hidden slice fails the fence-cover check.
  auto hidden = slices;
  hidden.erase(hidden.begin() + 1);
  st = core::Client::VerifyShardedResult(1000, 4000, hidden,
                                         router.fences(),
                                         sharded.ShardEpochs(), codec,
                                         crypto::HashScheme::kSha1, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

// --- composite VO (wire-level proof) -----------------------------------------

class CompositeVoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeDataset(400);  // keys 10..4000
    router_ = ShardRouter({1500, 3000});
    system_ = std::make_unique<ShardedTomSystem>(router_,
                                                 ShardedOptions<TomSystem>());
    ASSERT_TRUE(system_->Load(dataset_).ok());
  }

  crypto::RsaPublicKey OwnerKey() {
    return system_->shard(0).owner().public_key();
  }

  std::vector<Record> dataset_;
  ShardRouter router_{std::vector<Key>{}};
  std::unique_ptr<ShardedTomSystem> system_;
};

TEST_F(CompositeVoTest, RoundTripsAndVerifies) {
  auto outcome = system_->Query(1000, 3500);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.value().verification.ok());
  ASSERT_EQ(outcome.value().slices.size(), 3u);

  mbtree::CompositeVo cvo = core::BuildCompositeVo(outcome.value());
  std::vector<uint8_t> bytes = cvo.Serialize();
  auto decoded = mbtree::CompositeVo::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().Serialize(), bytes);

  RecordCodec codec(kRecSize);
  std::vector<mbtree::ShardVoVerdict> verdicts;
  Status st = mbtree::VerifyComposite(
      decoded.value(), 1000, 3500, outcome.value().results,
      router_.fences(), OwnerKey(), codec, crypto::HashScheme::kSha1,
      system_->ShardEpochs(), &verdicts);
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(verdicts.size(), 3u);
  for (const auto& verdict : verdicts) {
    EXPECT_TRUE(verdict.status.ok());
    EXPECT_EQ(verdict.epoch, 1u);
  }
}

TEST_F(CompositeVoTest, DetectsTamperedRecordInOneShard) {
  auto outcome = system_->Query(1000, 3500);
  ASSERT_TRUE(outcome.ok());
  mbtree::CompositeVo cvo = core::BuildCompositeVo(outcome.value());

  std::vector<Record> tampered = outcome.value().results;
  // Corrupt a record owned by the middle shard (keys 1500..2999).
  for (Record& record : tampered) {
    if (record.key >= 1500 && record.key < 3000) {
      record.payload[0] ^= 0xFF;
      break;
    }
  }
  RecordCodec codec(kRecSize);
  std::vector<mbtree::ShardVoVerdict> verdicts;
  Status st = mbtree::VerifyComposite(
      cvo, 1000, 3500, tampered, router_.fences(), OwnerKey(), codec,
      crypto::HashScheme::kSha1, system_->ShardEpochs(), &verdicts);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
  // Attribution: only the middle shard's verdict fails.
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_TRUE(verdicts[0].status.ok());
  EXPECT_FALSE(verdicts[1].status.ok());
  EXPECT_TRUE(verdicts[2].status.ok());
}

TEST_F(CompositeVoTest, DetectsHiddenShardSlice) {
  auto outcome = system_->Query(1000, 3500);
  ASSERT_TRUE(outcome.ok());
  mbtree::CompositeVo cvo = core::BuildCompositeVo(outcome.value());
  cvo.parts.erase(cvo.parts.begin() + 1);  // hide the middle shard

  std::vector<Record> results;
  for (const Record& record : outcome.value().results) {
    if (record.key < 1500 || record.key >= 3000) results.push_back(record);
  }
  RecordCodec codec(kRecSize);
  Status st = mbtree::VerifyComposite(
      cvo, 1000, 3500, results, router_.fences(), OwnerKey(), codec,
      crypto::HashScheme::kSha1, system_->ShardEpochs(), nullptr);
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailure);
}

TEST_F(CompositeVoTest, StaleShardEpochIsSkewAgainstFreshVector) {
  auto outcome = system_->Query(1000, 3500);
  ASSERT_TRUE(outcome.ok());
  mbtree::CompositeVo cvo = core::BuildCompositeVo(outcome.value());

  // The DO publishes a fresher epoch for shard 1 than its VO carries —
  // e.g. the client fetched the vector after an update the SP has not
  // applied. The composite must read as skew, not generic corruption.
  std::vector<uint64_t> published = system_->ShardEpochs();
  published[1] += 1;
  RecordCodec codec(kRecSize);
  Status st = mbtree::VerifyComposite(
      cvo, 1000, 3500, outcome.value().results, router_.fences(), OwnerKey(),
      codec, crypto::HashScheme::kSha1, published, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kShardEpochSkew);

  // Every entry fresher than its VO: a uniform replay -> kStaleEpoch.
  for (uint64_t& epoch : published) epoch += 1;
  st = mbtree::VerifyComposite(cvo, 1000, 3500, outcome.value().results,
                               router_.fences(), OwnerKey(), codec,
                               crypto::HashScheme::kSha1, published, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kStaleEpoch);
}

// --- engine integration ------------------------------------------------------

TEST(ShardedEngineTest, BatchesRunAgainstShardedSystems) {
  auto dataset = MakeDataset(500);
  ShardedSaeSystem sharded(ShardRouter({2500}), ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  std::vector<BatchQuery> batch;
  for (uint32_t lo = 0; lo < 4500; lo += 450) {
    batch.push_back(BatchQuery{lo, lo + 600, AttackMode::kNone});
  }
  QueryEngine engine(core::QueryEngineOptions{3});
  auto run = engine.RunBatch(&sharded, batch);
  EXPECT_EQ(run.stats.accepted, batch.size());
  EXPECT_EQ(run.stats.rejected + run.stats.failed, 0u);

  // A batch-wide attack mode applies to every shard (unsharded semantics).
  std::vector<BatchQuery> bad = batch;
  for (auto& q : bad) q.attack = AttackMode::kTamperPayload;
  auto rejected = engine.RunBatch(&sharded, bad);
  EXPECT_EQ(rejected.stats.rejected, bad.size());
}

TEST(ShardedEngineTest, MixedBatchesRouteUpdatesAcrossShards) {
  auto dataset = MakeDataset(400);
  ShardedSaeSystem sharded(ShardRouter({2000}), ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  RecordCodec codec(kRecSize);
  std::vector<core::BatchOp> ops;
  for (size_t i = 0; i < 40; ++i) {
    if (i % 4 == 0) {
      ops.push_back(core::BatchOp::MakeInsert(
          codec.MakeRecord(10'000 + i, uint32_t(100 + i * 97))));
    } else {
      uint32_t lo = uint32_t(i * 90);
      ops.push_back(core::BatchOp::MakeQuery(lo, lo + 500));
    }
  }
  QueryEngine engine(core::QueryEngineOptions{4});
  core::MixedStats stats = engine.RunMixedBatch(&sharded, ops);
  EXPECT_EQ(stats.updates, 10u);
  EXPECT_EQ(stats.update_failures, 0u);
  EXPECT_EQ(stats.accepted, stats.queries);
  EXPECT_EQ(stats.failed + stats.rejected, 0u);
}

// --- shard-parallel writers (ThreadSanitizer target) -------------------------

TEST(ShardedConcurrencyTest, ConcurrentQueriesShareTheFanoutPoolSafely) {
  // Regression: the internal fan-out QueryEngine serves one job at a
  // time; with fanout_workers > 0, concurrent multi-shard queries used to
  // race over its job state (empty result slots -> crash). Now the first
  // query in takes the pool via a try-lock and the rest fan out inline.
  auto dataset = MakeDataset(400);  // keys 10..4000
  auto options = ShardedOptions<SaeSystem>();
  options.fanout_workers = 2;
  ShardedSaeSystem sharded(ShardRouter({1500, 3000}), options);
  ASSERT_TRUE(sharded.Load(dataset).ok());

  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < 25; ++i) {
        auto outcome = sharded.ExecuteQuery(1000, 3500);
        if (!outcome.ok() || !outcome.value().verification.ok() ||
            outcome.value().slices.size() != 3) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ShardedConcurrencyTest, WritersOnDifferentShardsRunInParallel) {
  auto dataset = MakeDataset(300);  // keys 10..3000
  ShardedSaeSystem sharded(ShardRouter({1000, 2000}),
                           ShardedOptions<SaeSystem>());
  ASSERT_TRUE(sharded.Load(dataset).ok());

  constexpr size_t kWritersPerShard = 2;
  constexpr size_t kOpsPerWriter = 15;
  RecordCodec codec(kRecSize);
  std::atomic<size_t> failures{0};

  std::vector<std::thread> threads;
  // Writers pinned to distinct shards' key ranges never contend on a
  // shard lock; readers fan out across all three shards concurrently.
  for (size_t shard = 0; shard < 3; ++shard) {
    for (size_t w = 0; w < kWritersPerShard; ++w) {
      threads.emplace_back([&, shard, w] {
        for (size_t i = 0; i < kOpsPerWriter; ++i) {
          uint64_t id = 100'000 + shard * 10'000 + w * 1000 + i;
          uint32_t key = uint32_t(shard * 1000 + 100 + i);
          auto inserted =
              sharded.InsertVersioned(codec.MakeRecord(id, key));
          if (!inserted.ok() || inserted.value().shard != shard) {
            ++failures;
          }
        }
      });
    }
  }
  for (size_t r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < 20; ++i) {
        auto outcome = sharded.Query(500, 2500);
        if (!outcome.ok() || !outcome.value().verification.ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);

  // Every shard absorbed exactly its own writers' updates.
  std::vector<uint64_t> epochs = sharded.ShardEpochs();
  ASSERT_EQ(epochs.size(), 3u);
  for (uint64_t epoch : epochs) {
    EXPECT_EQ(epoch, 1 + kWritersPerShard * kOpsPerWriter);
  }

  // The post-churn database still matches a freshly loaded oracle.
  auto all = sharded.Query(0, 5000);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all.value().verification.ok());
}

}  // namespace
}  // namespace sae
