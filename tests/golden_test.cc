// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Golden-format tests. In an authentication system the byte-level formats
// ARE the security contract: record serialization feeds the digests, wire
// formats feed the channels, and page layouts determine every fanout the
// experiments rely on. These tests pin them; an accidental format change
// breaks here before it silently breaks verification interop.

#include <gtest/gtest.h>

#include "btree/bplus_tree.h"
#include "core/client.h"
#include "core/messages.h"
#include "crypto/digest.h"
#include "dbms/query.h"
#include "mbtree/mb_tree.h"
#include "storage/page_store.h"
#include "storage/record.h"
#include "util/hex.h"
#include "xbtree/xb_tree.h"

namespace sae {
namespace {

using storage::Record;
using storage::RecordCodec;

TEST(GoldenTest, RecordSerializationLayout) {
  RecordCodec codec(20);
  Record r;
  r.id = 0x0102030405060708ull;
  r.key = 0x0A0B0C0Du;
  r.payload = {0xAA, 0xBB};
  std::vector<uint8_t> bytes = codec.Serialize(r);
  // id (8B LE) || key (4B LE) || payload zero-padded to record size.
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "08070605040302010d0c0b0aaabb000000000000");
}

TEST(GoldenTest, DeterministicPayloadGenerator) {
  // MakeRecord's payload derivation must never change: the DO, SP, TE and
  // tests all regenerate record bytes from (id, key) independently.
  RecordCodec codec(24);
  Record r = codec.MakeRecord(42, 7);
  std::vector<uint8_t> bytes = codec.Serialize(r);
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "2a0000000000000007000000bea771dd093a273c0f21942f");
}

TEST(GoldenTest, RecordDigestStability) {
  RecordCodec codec(24);
  Record r = codec.MakeRecord(42, 7);
  std::vector<uint8_t> bytes = codec.Serialize(r);
  crypto::Digest d = crypto::ComputeDigest(bytes.data(), bytes.size());
  EXPECT_EQ(d.ToHex(), crypto::ComputeDigest(bytes.data(), bytes.size()).ToHex());
  // SHA-1 of the exact golden bytes above.
  auto expected = crypto::ComputeDigest(
      HexDecode("2a0000000000000007000000bea771dd093a273c0f21942f").data(),
      24);
  EXPECT_EQ(d, expected);
}

TEST(GoldenTest, PageDerivedFanouts) {
  // 4096-byte pages fix every fanout; these constants are what make Fig. 6
  // and Fig. 8 comparable with the paper.
  storage::InMemoryPageStore store;
  storage::BufferPool pool(&store, 16);
  EXPECT_EQ(btree::BPlusTree::Create(&pool).ValueOrDie()->max_leaf_entries(),
            340u);
  EXPECT_EQ(
      btree::BPlusTree::Create(&pool).ValueOrDie()->max_internal_keys(),
      509u);
  EXPECT_EQ(mbtree::MbTree::Create(&pool).ValueOrDie()->max_leaf_entries(),
            127u);
  EXPECT_EQ(mbtree::MbTree::Create(&pool).ValueOrDie()->max_internal_keys(),
            144u);
  EXPECT_EQ(xbtree::XbTree::Create(&pool).ValueOrDie()->max_entries(), 126u);
}

TEST(GoldenTest, HeapSlotsForPaperRecordSize) {
  storage::InMemoryPageStore store;
  storage::BufferPool pool(&store, 16);
  storage::HeapFile heap(&pool, 500);
  EXPECT_EQ(heap.slots_per_page(), 8u);  // (4096 - 32) / 500
}

TEST(GoldenTest, QueryMessageWireFormat) {
  std::vector<uint8_t> bytes = core::SerializeQuery(0x01020304, 0x0A0B0C0D);
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()), "02040302010d0c0b0a");
}

TEST(GoldenTest, VtMessageWireFormat) {
  core::VerificationToken vt;
  vt.epoch = 0x0807060504030201ull;
  for (size_t i = 0; i < vt.digest.bytes.size(); ++i) {
    vt.digest.bytes[i] = uint8_t(i);
  }
  std::vector<uint8_t> bytes = core::SerializeVt(vt);
  // tag || epoch (8B LE) || digest (20B).
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "030102030405060708000102030405060708090a0b0c0d0e0f10111213");
  EXPECT_EQ(bytes.size(), 29u);
}

TEST(GoldenTest, ResultsMessageWireFormat) {
  RecordCodec codec(20);
  Record r;
  r.id = 0x0102030405060708ull;
  r.key = 0x0A0B0C0Du;
  r.payload = {0xAA, 0xBB};
  std::vector<uint8_t> bytes =
      core::SerializeResults({r}, 0x0807060504030201ull, codec);
  // tag || epoch (8B LE) || record_size (4B LE) || count (8B LE) || records.
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "07010203040506070814000000010000000000000008070605040302010d0c0b"
            "0aaabb000000000000");
}

TEST(GoldenTest, QueryRequestWireFormat) {
  // tag || op (kTopK=6) || lo (4B LE) || hi (4B LE) || limit (4B LE).
  std::vector<uint8_t> bytes = core::SerializeQueryRequest(
      dbms::QueryRequest::TopK(0x01020304, 0x0A0B0C0D, 5));
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "0906040302010d0c0b0a05000000");
  auto back = core::DeserializeQueryRequest(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), dbms::QueryRequest::TopK(0x01020304, 0x0A0B0C0D, 5));
}

TEST(GoldenTest, QueryAnswerWireFormatAggregate) {
  // An aggregate answer ships derived fields + witness, no answer rows:
  // tag || op || epoch(8) || count(8) || sum(8) || has_extrema(1) ||
  // min(4) || max(4) || record_size(4) || n_answer(8)=0 || n_witness(8) ||
  // witness records.
  RecordCodec codec(20);
  Record r;
  r.id = 0x0102030405060708ull;
  r.key = 0x0A0B0C0Du;
  r.payload = {0xAA, 0xBB};
  dbms::QueryAnswer answer =
      dbms::EvaluateAnswer(dbms::QueryRequest::Count(0, 0xFFFFFFFF), {r});
  std::vector<uint8_t> bytes =
      core::SerializeQueryAnswer(answer, {r}, 0x0807060504030201ull, codec);
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "0a02010203040506070801000000000000000d0c0b0a00000000010d0c0b0a"
            "0d0c0b0a1400000000000000000000000100000000000000080706050403020"
            "10d0c0b0aaabb000000000000");
  auto back = core::DeserializeQueryAnswer(bytes, codec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().answer, answer);
  // Decoded records carry the canonical zero-padded payload.
  Record canonical = codec.Deserialize(codec.Serialize(r).data());
  EXPECT_EQ(back.value().witness, (std::vector<Record>{canonical}));
  EXPECT_EQ(back.value().epoch, 0x0807060504030201ull);
}

TEST(GoldenTest, QueryAnswerWireFormatTopK) {
  // Top-k is the only operator shipping answer rows of its own (the ranked
  // winners), ahead of the witness.
  RecordCodec codec(20);
  Record a = codec.MakeRecord(1, 10);
  Record b = codec.MakeRecord(2, 20);
  dbms::QueryAnswer answer =
      dbms::EvaluateAnswer(dbms::QueryRequest::TopK(0, 100, 1), {a, b});
  ASSERT_EQ(answer.records.size(), 1u);
  EXPECT_EQ(answer.records[0].id, 2u);  // key 20 wins
  std::vector<uint8_t> bytes =
      core::SerializeQueryAnswer(answer, {a, b}, 3, codec);
  // Sizes pin the layout: 55-byte header (tag, op, epoch, count, sum,
  // extrema flag, min, max, record size, two cardinalities) + 1 answer
  // row + 2 witness rows.
  EXPECT_EQ(bytes.size(), 55u + 3 * codec.record_size());
  auto back = core::DeserializeQueryAnswer(bytes, codec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().answer, answer);
  EXPECT_EQ(back.value().witness, (std::vector<Record>{a, b}));
}

// The aggregate-verification contract under BOTH hash schemes: the client
// recomputes the answer from the witness whose per-record digests (and
// therefore the XOR token that authenticates it) depend on the scheme.
// Pinned byte-exactly so neither scheme's witness digesting can drift.
TEST(GoldenTest, WitnessXorTokenBothSchemes) {
  RecordCodec codec(24);
  std::vector<Record> witness = {codec.MakeRecord(42, 7),
                                 codec.MakeRecord(43, 8)};
  crypto::Digest sha1 =
      core::Client::ResultXor(witness, codec, crypto::HashScheme::kSha1);
  EXPECT_EQ(sha1.ToHex(), "4bb88ca074b47e19859550f2fa22a84463623a8f");
  crypto::Digest sha256 = core::Client::ResultXor(
      witness, codec, crypto::HashScheme::kSha256Trunc);
  EXPECT_EQ(sha256.ToHex(), "89d6d931739766bb09cf7a9d41dd3d37d4346170");
}

TEST(GoldenTest, EpochNoticeWireFormat) {
  std::vector<uint8_t> bytes =
      core::SerializeEpochNotice(0x0807060504030201ull);
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()), "060102030405060708");
}

TEST(GoldenTest, ShardEpochVectorWireFormat) {
  // tag(0x08) + count(2, u32 LE) + two u64 LE epochs.
  std::vector<uint8_t> bytes =
      core::SerializeShardEpochs({0x01, 0x0807060504030201ull});
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "080200000001000000000000000102030405060708");
  auto decoded = core::DeserializeShardEpochs(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(),
            (std::vector<uint64_t>{0x01, 0x0807060504030201ull}));
}

TEST(GoldenTest, SignatureMessageWireFormat) {
  crypto::RsaSignature sig{0xDE, 0xAD, 0xBE, 0xEF};
  std::vector<uint8_t> bytes =
      core::SerializeSignature(sig, 0x0807060504030201ull);
  // tag || epoch (8B LE) || sig_len (2B LE) || sig bytes.
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "0401020304050607080400deadbeef");
}

// The commitment every root signature covers: H(root || epoch_le64). This
// is the wire-level security contract of the freshness scheme — pinned
// byte-exactly for BOTH hash schemes so it cannot drift silently.
TEST(GoldenTest, EpochStampedRootSignatureEncodingSha1) {
  crypto::Digest root;
  for (size_t i = 0; i < root.bytes.size(); ++i) root.bytes[i] = uint8_t(i);
  crypto::Digest stamped =
      crypto::EpochStampedDigest(root, 0x0807060504030201ull,
                                 crypto::HashScheme::kSha1);
  // SHA-1 of the 28-byte preimage 000102..13 || 0102030405060708.
  EXPECT_EQ(stamped.ToHex(), "f1068c9b5447945723e55ef23acb7b7ada8a4b80");
  // Must agree with hashing the hand-assembled preimage.
  auto preimage =
      HexDecode("000102030405060708090a0b0c0d0e0f101112130102030405060708");
  EXPECT_EQ(stamped,
            crypto::ComputeDigest(preimage.data(), preimage.size(),
                                  crypto::HashScheme::kSha1));
}

TEST(GoldenTest, EpochStampedRootSignatureEncodingSha256) {
  crypto::Digest root;
  for (size_t i = 0; i < root.bytes.size(); ++i) root.bytes[i] = uint8_t(i);
  crypto::Digest stamped =
      crypto::EpochStampedDigest(root, 0x0807060504030201ull,
                                 crypto::HashScheme::kSha256Trunc);
  // SHA-256 (truncated to 20 bytes) of the same 28-byte preimage.
  EXPECT_EQ(stamped.ToHex(), "a20337f594a9847c521934656e8590570fc323a9");
  auto preimage =
      HexDecode("000102030405060708090a0b0c0d0e0f101112130102030405060708");
  EXPECT_EQ(stamped,
            crypto::ComputeDigest(preimage.data(), preimage.size(),
                                  crypto::HashScheme::kSha256Trunc));
}

// Epoch zero must reproduce the same stamping rule (no special casing) —
// static set-ups sign EpochStampedDigest(root, 0), never the bare root.
TEST(GoldenTest, EpochStampZeroDiffersFromBareRoot) {
  crypto::Digest root = crypto::ComputeDigest("root", 4);
  for (auto scheme :
       {crypto::HashScheme::kSha1, crypto::HashScheme::kSha256Trunc}) {
    crypto::Digest stamped = crypto::EpochStampedDigest(root, 0, scheme);
    EXPECT_NE(stamped, root);
    EXPECT_NE(stamped, crypto::EpochStampedDigest(root, 1, scheme));
  }
}

TEST(GoldenTest, DeleteMessageWireFormat) {
  std::vector<uint8_t> bytes = core::SerializeDelete(0x1122334455667788ull, 9);
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "05887766554433221109000000");
}

TEST(GoldenTest, VoWireFormatStability) {
  // A tiny fully-specified MB-tree and query; the VO byte stream must not
  // drift. (Single leaf: 3 result slots between two boundary records is
  // impossible with only 3 records in range, so pin a digest/boundary mix.)
  storage::InMemoryPageStore store;
  storage::BufferPool pool(&store, 64);
  RecordCodec codec(20);
  mbtree::MbTreeOptions options;
  options.max_leaf_entries = 8;
  options.max_internal_keys = 8;
  auto tree = mbtree::MbTree::Create(&pool, options).ValueOrDie();
  std::map<uint64_t, Record> records;
  for (uint64_t id = 1; id <= 5; ++id) {
    Record r = codec.MakeRecord(id, uint32_t(id * 10));
    records[id] = r;
    auto bytes = codec.Serialize(r);
    ASSERT_TRUE(tree->Insert(mbtree::MbEntry{
                        r.key, id,
                        crypto::ComputeDigest(bytes.data(), bytes.size())})
                    .ok());
  }
  auto fetch = [&](storage::Rid rid) -> Result<std::vector<uint8_t>> {
    return codec.Serialize(records.at(rid));
  };
  auto vo = tree->BuildVo(20, 40, fetch).ValueOrDie();
  vo.epoch = 7;
  vo.signature = {0xDE, 0xAD};
  std::vector<uint8_t> bytes = vo.Serialize();

  // Token layout: NodeBegin(leaf, 5 items), digest? boundary(10) result(20)
  // result(30) result(40) boundary(50) -> keys 10 and 50 are boundaries.
  ASSERT_GE(bytes.size(), 5u);
  EXPECT_EQ(bytes[0], 0xA0);  // NodeBegin
  EXPECT_EQ(bytes[1], 0x01);  // is_leaf
  EXPECT_EQ(bytes[2], 0x05);  // 5 items
  // Re-parse and confirm exact round trip.
  auto back = mbtree::VerificationObject::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Serialize(), bytes);
  // Structure: boundary, result x3, boundary.
  const auto& items = back.value().root.items;
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(items[0].type, mbtree::VoItem::Type::kBoundaryRecord);
  EXPECT_EQ(items[1].type, mbtree::VoItem::Type::kResultEntry);
  EXPECT_EQ(items[2].type, mbtree::VoItem::Type::kResultEntry);
  EXPECT_EQ(items[3].type, mbtree::VoItem::Type::kResultEntry);
  EXPECT_EQ(items[4].type, mbtree::VoItem::Type::kBoundaryRecord);
}

TEST(GoldenTest, Sha1KnownAnswerForRecordSizedInput) {
  // 500 bytes of 0x00 — the paper's record size as a KAT.
  std::vector<uint8_t> zeros(500, 0);
  auto d = crypto::ComputeDigest(zeros.data(), zeros.size());
  EXPECT_EQ(d.ToHex(), "fc56d4b3c72a8bfe593373c740d558ec1340ac73");
}

}  // namespace
}  // namespace sae
