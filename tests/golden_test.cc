// Copyright (c) saedb authors. Licensed under the MIT license.
//
// Golden-format tests. In an authentication system the byte-level formats
// ARE the security contract: record serialization feeds the digests, wire
// formats feed the channels, and page layouts determine every fanout the
// experiments rely on. These tests pin them; an accidental format change
// breaks here before it silently breaks verification interop.

#include <gtest/gtest.h>

#include "btree/bplus_tree.h"
#include "core/messages.h"
#include "crypto/digest.h"
#include "mbtree/mb_tree.h"
#include "storage/page_store.h"
#include "storage/record.h"
#include "util/hex.h"
#include "xbtree/xb_tree.h"

namespace sae {
namespace {

using storage::Record;
using storage::RecordCodec;

TEST(GoldenTest, RecordSerializationLayout) {
  RecordCodec codec(20);
  Record r;
  r.id = 0x0102030405060708ull;
  r.key = 0x0A0B0C0Du;
  r.payload = {0xAA, 0xBB};
  std::vector<uint8_t> bytes = codec.Serialize(r);
  // id (8B LE) || key (4B LE) || payload zero-padded to record size.
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "08070605040302010d0c0b0aaabb000000000000");
}

TEST(GoldenTest, DeterministicPayloadGenerator) {
  // MakeRecord's payload derivation must never change: the DO, SP, TE and
  // tests all regenerate record bytes from (id, key) independently.
  RecordCodec codec(24);
  Record r = codec.MakeRecord(42, 7);
  std::vector<uint8_t> bytes = codec.Serialize(r);
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "2a0000000000000007000000bea771dd093a273c0f21942f");
}

TEST(GoldenTest, RecordDigestStability) {
  RecordCodec codec(24);
  Record r = codec.MakeRecord(42, 7);
  std::vector<uint8_t> bytes = codec.Serialize(r);
  crypto::Digest d = crypto::ComputeDigest(bytes.data(), bytes.size());
  EXPECT_EQ(d.ToHex(), crypto::ComputeDigest(bytes.data(), bytes.size()).ToHex());
  // SHA-1 of the exact golden bytes above.
  auto expected = crypto::ComputeDigest(
      HexDecode("2a0000000000000007000000bea771dd093a273c0f21942f").data(),
      24);
  EXPECT_EQ(d, expected);
}

TEST(GoldenTest, PageDerivedFanouts) {
  // 4096-byte pages fix every fanout; these constants are what make Fig. 6
  // and Fig. 8 comparable with the paper.
  storage::InMemoryPageStore store;
  storage::BufferPool pool(&store, 16);
  EXPECT_EQ(btree::BPlusTree::Create(&pool).ValueOrDie()->max_leaf_entries(),
            340u);
  EXPECT_EQ(
      btree::BPlusTree::Create(&pool).ValueOrDie()->max_internal_keys(),
      509u);
  EXPECT_EQ(mbtree::MbTree::Create(&pool).ValueOrDie()->max_leaf_entries(),
            127u);
  EXPECT_EQ(mbtree::MbTree::Create(&pool).ValueOrDie()->max_internal_keys(),
            144u);
  EXPECT_EQ(xbtree::XbTree::Create(&pool).ValueOrDie()->max_entries(), 126u);
}

TEST(GoldenTest, HeapSlotsForPaperRecordSize) {
  storage::InMemoryPageStore store;
  storage::BufferPool pool(&store, 16);
  storage::HeapFile heap(&pool, 500);
  EXPECT_EQ(heap.slots_per_page(), 8u);  // (4096 - 32) / 500
}

TEST(GoldenTest, QueryMessageWireFormat) {
  std::vector<uint8_t> bytes = core::SerializeQuery(0x01020304, 0x0A0B0C0D);
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()), "02040302010d0c0b0a");
}

TEST(GoldenTest, VtMessageWireFormat) {
  crypto::Digest d;
  for (size_t i = 0; i < d.bytes.size(); ++i) d.bytes[i] = uint8_t(i);
  std::vector<uint8_t> bytes = core::SerializeVt(d);
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "03000102030405060708090a0b0c0d0e0f10111213");
  EXPECT_EQ(bytes.size(), 21u);
}

TEST(GoldenTest, DeleteMessageWireFormat) {
  std::vector<uint8_t> bytes = core::SerializeDelete(0x1122334455667788ull, 9);
  EXPECT_EQ(HexEncode(bytes.data(), bytes.size()),
            "05887766554433221109000000");
}

TEST(GoldenTest, VoWireFormatStability) {
  // A tiny fully-specified MB-tree and query; the VO byte stream must not
  // drift. (Single leaf: 3 result slots between two boundary records is
  // impossible with only 3 records in range, so pin a digest/boundary mix.)
  storage::InMemoryPageStore store;
  storage::BufferPool pool(&store, 64);
  RecordCodec codec(20);
  mbtree::MbTreeOptions options;
  options.max_leaf_entries = 8;
  options.max_internal_keys = 8;
  auto tree = mbtree::MbTree::Create(&pool, options).ValueOrDie();
  std::map<uint64_t, Record> records;
  for (uint64_t id = 1; id <= 5; ++id) {
    Record r = codec.MakeRecord(id, uint32_t(id * 10));
    records[id] = r;
    auto bytes = codec.Serialize(r);
    ASSERT_TRUE(tree->Insert(mbtree::MbEntry{
                        r.key, id,
                        crypto::ComputeDigest(bytes.data(), bytes.size())})
                    .ok());
  }
  auto fetch = [&](storage::Rid rid) -> Result<std::vector<uint8_t>> {
    return codec.Serialize(records.at(rid));
  };
  auto vo = tree->BuildVo(20, 40, fetch).ValueOrDie();
  vo.signature = {0xDE, 0xAD};
  std::vector<uint8_t> bytes = vo.Serialize();

  // Token layout: NodeBegin(leaf, 5 items), digest? boundary(10) result(20)
  // result(30) result(40) boundary(50) -> keys 10 and 50 are boundaries.
  ASSERT_GE(bytes.size(), 5u);
  EXPECT_EQ(bytes[0], 0xA0);  // NodeBegin
  EXPECT_EQ(bytes[1], 0x01);  // is_leaf
  EXPECT_EQ(bytes[2], 0x05);  // 5 items
  // Re-parse and confirm exact round trip.
  auto back = mbtree::VerificationObject::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Serialize(), bytes);
  // Structure: boundary, result x3, boundary.
  const auto& items = back.value().root.items;
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(items[0].type, mbtree::VoItem::Type::kBoundaryRecord);
  EXPECT_EQ(items[1].type, mbtree::VoItem::Type::kResultEntry);
  EXPECT_EQ(items[2].type, mbtree::VoItem::Type::kResultEntry);
  EXPECT_EQ(items[3].type, mbtree::VoItem::Type::kResultEntry);
  EXPECT_EQ(items[4].type, mbtree::VoItem::Type::kBoundaryRecord);
}

TEST(GoldenTest, Sha1KnownAnswerForRecordSizedInput) {
  // 500 bytes of 0x00 — the paper's record size as a KAT.
  std::vector<uint8_t> zeros(500, 0);
  auto d = crypto::ComputeDigest(zeros.data(), zeros.size());
  EXPECT_EQ(d.ToHex(), "fc56d4b3c72a8bfe593373c740d558ec1340ac73");
}

}  // namespace
}  // namespace sae
