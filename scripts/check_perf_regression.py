#!/usr/bin/env python3
# Copyright (c) saedb authors. Licensed under the MIT license.
"""Compares two BENCH_throughput.json files and flags q/s regressions.

Usage: check_perf_regression.py BASELINE CURRENT [--threshold 0.20]

Reads the `read_heavy_95_5` section of both files and compares, per model
(SAE/TOM), the cached and uncached queries/sec. A drop beyond the
threshold (default 20%) emits a GitHub `::warning::` annotation and makes
the script exit 2; improvements and small fluctuations are reported but
pass. With SAE_PERF_GATE_STRICT=1 in the environment the exit code is
meant to fail the job; otherwise CI runs the gate with continue-on-error
so a noisy shared runner cannot turn the build red on its own.

Exit codes: 0 ok, 1 usage/parse error, 2 regression beyond threshold.
"""

import argparse
import json
import os
import sys


def load_models(path):
    """Returns {model: {metric: qps}} from a BENCH_throughput.json file."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("read_heavy_95_5", []):
        model = entry.get("model", "?")
        out[model] = {
            "qps_cached": float(entry["qps_cached"]),
            "qps_uncached": float(entry["qps_uncached"]),
        }
    # batch_verify.speedup is deliberately NOT compared: it is a ratio of
    # two implementations, not a throughput — e.g. faster modexp shrinks
    # it while making both sides faster.
    return out, doc.get("scale")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional drop that counts as a regression")
    args = parser.parse_args()

    try:
        base, base_scale = load_models(args.baseline)
        cur, cur_scale = load_models(args.current)
    except (OSError, ValueError, KeyError) as err:
        print(f"::notice::perf gate skipped: cannot parse inputs ({err})")
        return 1

    if base_scale != cur_scale:
        # Different SAE_BENCH_SCALE settings measure different workloads;
        # comparing them would only produce false alarms.
        print(f"::notice::perf gate skipped: baseline scale {base_scale} "
              f"!= current scale {cur_scale}")
        return 0

    regressed = False
    for model, metrics in sorted(base.items()):
        for metric, old in sorted(metrics.items()):
            new = cur.get(model, {}).get(metric)
            if new is None or old <= 0:
                continue
            delta = (new - old) / old
            line = (f"{model}.{metric}: {old:.1f} -> {new:.1f} "
                    f"({delta:+.1%})")
            if delta < -args.threshold:
                print(f"::warning title=perf regression::{line} exceeds "
                      f"the {args.threshold:.0%} drop threshold")
                regressed = True
            else:
                print(f"  {line}")

    if regressed:
        strict = os.environ.get("SAE_PERF_GATE_STRICT", "") == "1"
        print(f"perf gate: regression detected "
              f"({'failing' if strict else 'warning only'})")
        return 2
    print("perf gate: no regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
