#!/usr/bin/env python3
# Copyright (c) saedb authors. Licensed under the MIT license.
"""Compares two BENCH_*.json files and flags metric regressions.

Usage: check_perf_regression.py BASELINE CURRENT [--threshold 0.20]

Understands every bench JSON shape the tree emits:

  * BENCH_throughput.json — the `read_heavy_95_5` section, per model
    (SAE/TOM), cached and uncached queries/sec;
  * figure benches (BENCH_fig*.json) — the generic `rows` array written by
    bench::BenchJson, rows keyed by their string label fields;
  * BENCH_crypto.json — the `primitives` array (accelerated ops/sec per
    primitive; the scalar column and the batch_verify ratios are
    deliberately not gated — they are implementation comparisons, not
    throughputs);
  * BENCH_net.json — the serving-tier q/s and latency percentiles.

Metric direction is inferred from the name: qps / *_per_sec / *ops* are
higher-is-better, *_ms / *_mb / *_bytes / *accesses are lower-is-better,
anything else (ratios, counts) is skipped. A change in the losing
direction beyond the threshold (default 20%) emits a GitHub `::warning::`
annotation and makes the script exit 2; improvements and small
fluctuations pass. With SAE_PERF_GATE_STRICT=1 the exit code is meant to
fail the job; otherwise CI runs the gate with continue-on-error so a
noisy shared runner cannot turn the build red on its own.

Exit codes: 0 ok, 1 usage/parse error, 2 regression beyond threshold.
"""

import argparse
import json
import os
import sys

_HIGHER_TOKENS = ("qps", "per_sec", "ops")
# Checked BEFORE the higher-is-better tokens: "bytes_per_checkpoint" would
# otherwise never match (it doesn't END with _bytes) and "bytes_per_update"
# would match the "per_sec"-style token scan in the wrong direction.
_LOWER_TOKENS = ("bytes_per",)
_LOWER_SUFFIXES = ("_ms", "_mb", "_bytes", "accesses")


def metric_direction(name):
    """+1 when higher is better, -1 when lower is better, 0 to skip."""
    lowered = name.lower()
    if any(token in lowered for token in _LOWER_TOKENS):
        return -1
    if any(token in lowered for token in _HIGHER_TOKENS):
        return 1
    if lowered.endswith(_LOWER_SUFFIXES):
        return -1
    return 0


def extract_metrics(doc):
    """Returns {row_key: {metric: value}} for any known bench shape."""
    out = {}
    for entry in doc.get("read_heavy_95_5", []):
        model = entry.get("model", "?")
        out[model] = {
            "qps_cached": float(entry["qps_cached"]),
            "qps_uncached": float(entry["qps_uncached"]),
        }
    for row in doc.get("rows", []):
        labels = sorted(
            (k, v) for k, v in row.items() if isinstance(v, str))
        key = "/".join(f"{k}={v}" for k, v in labels) or "row"
        out[key] = {
            k: float(v) for k, v in row.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
    for primitive in doc.get("primitives", []):
        out[primitive["name"]] = {
            "accel_ops_per_sec": float(primitive["accel_ops_per_sec"]),
        }
    if doc.get("bench") == "net_serving":
        out["net_serving"] = {
            k: float(doc[k])
            for k in ("qps", "p50_ms", "p99_ms", "p999_ms") if k in doc
        }
    return out


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return extract_metrics(doc), doc.get("scale")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional change that counts as a regression")
    args = parser.parse_args()

    try:
        base, base_scale = load(args.baseline)
        cur, cur_scale = load(args.current)
    except (OSError, ValueError, KeyError) as err:
        print(f"::notice::perf gate skipped: cannot parse inputs ({err})")
        return 1

    if base_scale != cur_scale:
        # Different SAE_BENCH_SCALE settings measure different workloads;
        # comparing them would only produce false alarms.
        print(f"::notice::perf gate skipped: baseline scale {base_scale} "
              f"!= current scale {cur_scale}")
        return 0

    name = os.path.basename(args.current)
    regressed = False
    compared = 0
    for row_key, metrics in sorted(base.items()):
        for metric, old in sorted(metrics.items()):
            direction = metric_direction(metric)
            new = cur.get(row_key, {}).get(metric)
            if direction == 0 or new is None or old <= 0:
                continue
            compared += 1
            delta = (new - old) / old
            line = (f"{name} {row_key}.{metric}: {old:.1f} -> {new:.1f} "
                    f"({delta:+.1%})")
            if direction * delta < -args.threshold:
                print(f"::warning title=perf regression::{line} exceeds "
                      f"the {args.threshold:.0%} threshold")
                regressed = True
            else:
                print(f"  {line}")

    if compared == 0:
        print(f"::notice::perf gate: no comparable metrics in {name}")
        return 0
    if regressed:
        strict = os.environ.get("SAE_PERF_GATE_STRICT", "") == "1"
        print(f"perf gate: regression detected "
              f"({'failing' if strict else 'warning only'})")
        return 2
    print(f"perf gate: {name} has no regression beyond threshold "
          f"({compared} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
